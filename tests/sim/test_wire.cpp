// Wire-format unit tests: primitive codecs (including the total-domain
// sentinel escapes), registry registration rules, a deterministic-rng
// round-trip fuzz over every action registered in this binary, rejection
// of truncated / corrupted frames, and golden byte-layout fixtures — one
// payload per layer — that pin the encoding so accidental format changes
// fail loudly.
//
// The fuzz invariant mirrors the network's wire mode: encode → decode →
// re-encode must reproduce the original frame byte for byte.
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aggregation/aggregator.hpp"
#include "aggregation/broadcast.hpp"
#include "baselines/centralized.hpp"
#include "baselines/gossip_select.hpp"
#include "baselines/naive_kselect.hpp"
#include "baselines/nobatch.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/wire.hpp"
#include "dht/dht.hpp"
#include "kselect/kselect.hpp"
#include "overlay/membership.hpp"
#include "overlay/overlay_node.hpp"
#include "recovery/recovery.hpp"
#include "seap/seap_node.hpp"
#include "sim/payload.hpp"
#include "sim/reliable.hpp"
#include "skeap/skeap_node.hpp"

namespace sks {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Build the expected byte image from a literal bit string ("0100...").
std::vector<std::uint8_t> bits_to_bytes(const std::string& bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  return out;
}

/// The body bytes of one payload (no frame tag): what the golden fixtures
/// pin. Stable across registration order, unlike the full frame.
std::vector<std::uint8_t> body_bytes(const sim::Payload& p) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  p.encode(w);
  w.finish();
  return buf;
}

std::vector<std::uint8_t> frame_bytes(const sim::Payload& p) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  sim::encode_frame(p, w);
  return buf;
}

/// The wire-mode invariant: encode → decode → re-encode reproduces the
/// original frame byte for byte.
void expect_frame_roundtrip(const sim::Payload& p,
                            std::set<sim::ActionId>* covered = nullptr) {
  const std::vector<std::uint8_t> buf = frame_bytes(p);
  wire::WireReader r(buf);
  sim::PayloadPtr q = sim::decode_frame(r);
  ASSERT_EQ(q->tag(), p.tag()) << p.name();
  EXPECT_EQ(frame_bytes(*q), buf) << "re-encode mismatch for " << p.name();
  if (covered != nullptr) covered->insert(p.tag());
}

/// Same invariant for bare value types (Element, Interval, Batch, ...)
/// that serialize without a frame of their own.
template <class V>
void expect_value_roundtrip(const V& v) {
  std::vector<std::uint8_t> buf;
  {
    wire::WireWriter w(buf);
    v.encode(w);
    w.finish();
  }
  wire::WireReader r(buf);
  const V v2 = V::decode(r);
  r.finish();
  std::vector<std::uint8_t> buf2;
  {
    wire::WireWriter w(buf2);
    v2.encode(w);
    w.finish();
  }
  EXPECT_EQ(buf2, buf);
}

/// A u64 drawn from a magnitude-stratified distribution: small values,
/// mid-range values, full-width hashes and the all-ones sentinel all get
/// exercised (the varint codecs behave differently in each regime).
std::uint64_t rand_u64(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return rng.below(16);
    case 1: return rng.below(1u << 20);
    case 2: return rng.next();
    default: return ~0ull;
  }
}

Element rand_element(Rng& rng) { return Element{rand_u64(rng), rand_u64(rng)}; }

overlay::VirtualId rand_virtual_id(Rng& rng) {
  if (rng.below(4) == 0) return overlay::VirtualId{};
  overlay::VirtualId v;
  v.host = static_cast<NodeId>(rng.below(1u << 20));
  v.kind = static_cast<overlay::VKind>(rng.below(3));
  v.label = rng.next();
  return v;
}

Interval rand_interval(Rng& rng) {
  if (rng.below(4) == 0) return Interval::empty_interval();
  const Position lo = 1 + rng.below(1u << 20);
  return Interval{lo, lo + rng.below(256)};
}

dht::DhtComponent::ArcData rand_arc(Rng& rng) {
  dht::DhtComponent::ArcData arc;
  for (std::size_t space = 0; space < dht::DhtComponent::kNumSpaces; ++space) {
    const std::uint64_t cells = rng.below(4);
    for (std::uint64_t i = 0; i < cells; ++i) {
      auto& q = arc.elements[space][rng.next()];
      const std::uint64_t n = 1 + rng.below(3);
      for (std::uint64_t j = 0; j < n; ++j) q.push_back(rand_element(rng));
    }
    const std::uint64_t waits = rng.below(3);
    for (std::uint64_t i = 0; i < waits; ++i) {
      arc.waiting[space][rng.next()].push_back(dht::DhtComponent::WaitingGet{
          static_cast<NodeId>(rng.below(64)), rng.below(1u << 16)});
    }
  }
  return arc;
}

skeap::Batch rand_batch(Rng& rng) {
  const std::size_t priorities = 1 + rng.below(4);
  skeap::Batch b(priorities);
  const std::uint64_t ops = rng.below(12);
  for (std::uint64_t i = 0; i < ops; ++i) {
    if (rng.below(2) != 0) {
      b.record_insert(1 + rng.below(priorities));
    } else {
      b.record_delete();
    }
  }
  return b;
}

kselect::KStep rand_kstep(Rng& rng) {
  kselect::KStep s;
  s.session = rng.below(1u << 16);
  s.step_seq = static_cast<std::uint32_t>(rng.below(1u << 16));
  s.iter = static_cast<std::uint32_t>(rng.below(64));
  s.kind = static_cast<kselect::StepKind>(rng.below(9));
  s.k = rng.below(1u << 20);
  s.N = rng.below(1u << 20);
  s.has_lo = rng.below(2) != 0;
  if (s.has_lo) s.lo = rand_element(rng);
  s.has_hi = rng.below(2) != 0;
  if (s.has_hi) s.hi = rand_element(rng);
  s.has_result = rng.below(2) != 0;
  if (s.has_result) s.result = rand_element(rng);
  return s;
}

kselect::KReply rand_kreply(Rng& rng) {
  kselect::KReply rep;
  rep.kind = static_cast<kselect::StepKind>(rng.below(9));
  rep.a = rng.below(1u << 20);
  rep.b = rng.below(1u << 20);
  rep.has_ka = rng.below(2) != 0;
  if (rep.has_ka) rep.ka = rand_element(rng);
  rep.has_kb = rng.below(2) != 0;
  if (rep.has_kb) rep.kb = rand_element(rng);
  return rep;
}

// ---------------------------------------------------------------------------
// Local payload types used by the registry tests (covered by the fuzz so
// the completeness assert holds regardless of gtest execution order).
// ---------------------------------------------------------------------------

struct DupFirst final : sim::Action<DupFirst> {
  static constexpr const char* kActionName = "test.wire.dup";
  std::uint64_t size_bits() const override { return 8; }
  void encode(wire::WireWriter&) const override {}
  static sim::Owned<DupFirst> decode(wire::WireReader&) {
    return sim::make_payload<DupFirst>();
  }
};

/// Distinct type, same action name: registration must be rejected.
struct DupSecond final : sim::Action<DupSecond> {
  static constexpr const char* kActionName = "test.wire.dup";
  std::uint64_t size_bits() const override { return 8; }
  void encode(wire::WireWriter&) const override {}
  static sim::Owned<DupSecond> decode(wire::WireReader&) {
    return sim::make_payload<DupSecond>();
  }
};

struct ThreadedPayload final : sim::Action<ThreadedPayload> {
  static constexpr const char* kActionName = "test.wire.threaded";
  std::uint64_t size_bits() const override { return 8; }
  void encode(wire::WireWriter&) const override {}
  static sim::Owned<ThreadedPayload> decode(wire::WireReader&) {
    return sim::make_payload<ThreadedPayload>();
  }
};

// ---------------------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------------------

TEST(WirePrimitives, RoundTripAcrossMagnitudes) {
  Rng rng(0x817e5ULL);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rand_u64(rng);
    std::vector<std::uint8_t> buf;
    wire::WireWriter w(buf);
    const std::uint32_t width = static_cast<std::uint32_t>(rng.below(65));
    const std::uint64_t narrowed =
        width == 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
    w.bits(narrowed, width);
    w.leb(v);
    w.zz64(v);
    if (v != ~0ull) w.gamma(v);
    w.gammau(v);
    w.delta(v);
    w.gamma_zz(v);
    w.boolean((v & 1) != 0);
    w.finish();

    wire::WireReader r(buf);
    EXPECT_EQ(r.bits(width), narrowed);
    EXPECT_EQ(r.leb(), v);
    EXPECT_EQ(r.zz64(), v);
    if (v != ~0ull) EXPECT_EQ(r.gamma(), v);
    EXPECT_EQ(r.gammau(), v);
    EXPECT_EQ(r.delta(), v);
    EXPECT_EQ(r.gamma_zz(), v);
    EXPECT_EQ(r.boolean(), (v & 1) != 0);
    r.finish();
  }
}

TEST(WirePrimitives, IntervalRoundTripsEveryShape) {
  Rng rng(0x1e7e2fULL);
  for (int i = 0; i < 500; ++i) {
    // Arbitrary (lo, hi) pairs, including hi < lo (the empty convention).
    const std::uint64_t lo = rand_u64(rng);
    const std::uint64_t hi = rand_u64(rng);
    std::vector<std::uint8_t> buf;
    wire::WireWriter w(buf);
    w.interval(lo, hi);
    w.finish();
    wire::WireReader r(buf);
    const wire::WireReader::Iv iv = r.interval();
    EXPECT_EQ(iv.lo, lo);
    EXPECT_EQ(iv.hi, hi);
    r.finish();
  }
}

TEST(WirePrimitives, GoldenEncodings) {
  const auto one = [](auto emit) {
    std::vector<std::uint8_t> buf;
    wire::WireWriter w(buf);
    emit(w);
    w.finish();
    return buf;
  };
  EXPECT_EQ(one([](wire::WireWriter& w) { w.leb(0); }),
            bits_to_bytes("00000000"));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.leb(300); }),
            (std::vector<std::uint8_t>{0xAC, 0x02}));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.zz64(~0ull); }),
            (std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.gamma(0); }), bits_to_bytes("1"));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.gamma(5); }),
            bits_to_bytes("00110"));
  // The all-ones escapes: 65 bits of gamma escape, delta's length-64 code.
  EXPECT_EQ(one([](wire::WireWriter& w) { w.gammau(~0ull); }),
            (std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0, 0, 0, 0x80}));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.delta(~0ull); }),
            bits_to_bytes("0000001000001"));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.delta(0); }), bits_to_bytes("1"));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.gamma_zz(~0ull); }),
            bits_to_bytes("010"));
  EXPECT_EQ(one([](wire::WireWriter& w) { w.interval(5, 9); }),
            (std::vector<std::uint8_t>{0x0A, 0x0A}));
}

TEST(WirePrimitives, GammaRejectsAllOnes) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  EXPECT_THROW(w.gamma(~0ull), CheckFailure);
}

TEST(WirePrimitives, WriterReusesBufferCapacity) {
  std::vector<std::uint8_t> buf;
  {
    wire::WireWriter w(buf);
    for (int i = 0; i < 64; ++i) w.bits(~0ull, 64);
    w.finish();
  }
  const std::size_t cap = buf.capacity();
  {
    wire::WireWriter w(buf);
    w.leb(5);
    w.finish();
  }
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x05}));
  EXPECT_EQ(buf.capacity(), cap) << "reuse must not shrink the buffer";
}

// ---------------------------------------------------------------------------
// Registry rules
// ---------------------------------------------------------------------------

TEST(WireRegistry, DuplicateActionNameIsRejected) {
  DupFirst first;  // registers "test.wire.dup"
  EXPECT_THROW(DupSecond{}, CheckFailure)
      << "two payload types must not share an action name";
  // The failed registration must not have claimed an id.
  const sim::ActionRegistry& reg = sim::ActionRegistry::instance();
  EXPECT_EQ(reg.name(first.tag()), "test.wire.dup");
}

TEST(WireRegistry, ConcurrentFirstUseRegistersOnce) {
  std::vector<std::thread> threads;
  std::vector<sim::ActionId> ids(8, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    threads.emplace_back([&ids, i] { ids[i] = sim::action_tag_of<ThreadedPayload>(); });
  }
  for (auto& t : threads) t.join();
  for (const sim::ActionId id : ids) EXPECT_EQ(id, ids[0]);
  EXPECT_EQ(sim::ActionRegistry::instance().name(ids[0]),
            "test.wire.threaded");
}

TEST(WireRegistry, UnknownTagIsRejected) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  w.gamma(sim::ActionRegistry::instance().size() + 1000);
  w.finish();
  wire::WireReader r(buf);
  EXPECT_THROW(sim::decode_frame(r), CheckFailure);
}

TEST(WireRegistry, OutOfRangeTagIsRejected) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  w.gamma(std::uint64_t{1} << 32);  // beyond the 32-bit ActionId domain
  w.finish();
  wire::WireReader r(buf);
  EXPECT_THROW(sim::decode_frame(r), CheckFailure);
}

// ---------------------------------------------------------------------------
// Value-type codecs
// ---------------------------------------------------------------------------

TEST(WireValues, CoreValueTypesRoundTrip) {
  Rng rng(0x7a1ebULL);
  for (int i = 0; i < 200; ++i) {
    expect_value_roundtrip(rand_element(rng));
    expect_value_roundtrip(rand_virtual_id(rng));
    expect_value_roundtrip(rand_interval(rng));
  }
  // The non-canonical empty interval {5, 4} must survive as written.
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  Interval{5, 4}.encode(w);
  w.finish();
  wire::WireReader r(buf);
  const Interval iv = Interval::decode(r);
  EXPECT_EQ(iv.lo, 5u);
  EXPECT_EQ(iv.hi, 4u);
}

TEST(WireValues, BatchAndAssignmentRoundTrip) {
  Rng rng(0xba7cULL);
  for (int i = 0; i < 100; ++i) {
    const skeap::Batch batch = rand_batch(rng);
    expect_value_roundtrip(batch);
    // A real assignment (the anchor's own carve) for the batch; assigning
    // a second batch of the same width advances the cursors, so the delta
    // packing sees non-zero interval origins too.
    skeap::AnchorState anchor(batch.num_priorities());
    expect_value_roundtrip(anchor.assign(batch));
    skeap::Batch second(batch.num_priorities());
    const std::uint64_t ops = rng.below(8);
    for (std::uint64_t j = 0; j < ops; ++j) {
      if (rng.below(2) != 0) {
        second.record_insert(1 + rng.below(batch.num_priorities()));
      } else {
        second.record_delete();
      }
    }
    expect_value_roundtrip(anchor.assign(second));
  }
}

TEST(WireValues, ArcDataEncodesCanonically) {
  Rng rng(0xa2cULL);
  for (int i = 0; i < 50; ++i) {
    const dht::DhtComponent::ArcData arc = rand_arc(rng);
    expect_value_roundtrip(arc);
  }
}

// ---------------------------------------------------------------------------
// Round-trip fuzz over every registered action
// ---------------------------------------------------------------------------

/// Drive `fn(payload)` over `rounds` freshly built instances of every
/// registered payload type — the single source of "all payload types" for
/// both the byte-exact round-trip fuzz and the corruption fuzz below.
template <class Fn>
void sweep_sample_payloads(Rng& rng, int rounds, Fn&& fn) {
  for (int round = 0; round < rounds; ++round) {
    // --- dht ---------------------------------------------------------------
    {
      dht::PutRequest p;
      p.element = rand_element(rng);
      p.requester = static_cast<NodeId>(rng.below(1u << 12));
      p.request_id = rng.below(1u << 20);
      p.want_ack = rng.below(2) != 0;
      p.space = static_cast<std::uint8_t>(rng.below(2));
      p.bits = rng.below(1u << 12);
      fn(p);
    }
    {
      dht::GetRequest g;
      g.requester = static_cast<NodeId>(rng.below(1u << 12));
      g.request_id = rng.below(1u << 20);
      g.space = static_cast<std::uint8_t>(rng.below(2));
      g.bits = rng.below(1u << 12);
      fn(g);
    }
    {
      dht::GetReply rep;
      rep.element = rand_element(rng);
      rep.request_id = rng.below(1u << 20);
      fn(rep);
    }
    {
      dht::PutAck ack;
      ack.request_id = rand_u64(rng);
      fn(ack);
    }
    // --- transport / recovery ---------------------------------------------
    {
      sim::ReliableAck ack;
      ack.acked_seq = rand_u64(rng);
      fn(ack);
    }
    fn(recovery::Heartbeat{});
    fn(recovery::SuspectProbe{});
    fn(recovery::ProbeReply{});
    {
      recovery::ReplicaDelta d;
      d.owner = static_cast<NodeId>(rng.below(64));
      const std::uint64_t entries = rng.below(4);
      for (std::uint64_t i = 0; i < entries; ++i) {
        recovery::DeltaEntry e;
        e.space = static_cast<std::uint8_t>(rng.below(2));
        e.key = rng.next();
        const std::uint64_t elems = rng.below(4);
        for (std::uint64_t j = 0; j < elems; ++j) {
          e.elems.push_back(rand_element(rng));
        }
        d.entries.push_back(std::move(e));
      }
      const std::uint64_t words = rng.below(4);
      for (std::uint64_t i = 0; i < words; ++i) d.anchor_blob.push_back(rng.next());
      d.has_anchor = rng.below(2) != 0;
      d.digest = rand_u64(rng);
      fn(d);
    }
    // --- overlay envelopes (recursive inner frames) ------------------------
    {
      overlay::RouteHop hop;
      hop.target = rng.next();
      hop.d = static_cast<std::uint32_t>(rng.below(65));
      hop.rho = hop.d == 64
                    ? rng.next()
                    : (hop.d == 0 ? 0 : rng.next() & ((std::uint64_t{1} << hop.d) - 1));
      hop.ideal = rng.next();
      hop.phase_a_left = static_cast<std::uint32_t>(rng.below(64));
      hop.phase_b_done = static_cast<std::uint32_t>(rng.below(64));
      hop.anchored = rng.below(2) != 0;
      hop.at_kind = static_cast<overlay::VKind>(rng.below(3));
      hop.origin = static_cast<NodeId>(rng.below(1u << 12));
      hop.hops = rng.below(256);
      hop.header_bits = rng.below(1024);
      if (rng.below(4) != 0) {
        auto inner = sim::make_payload<dht::PutRequest>();
        inner->element = rand_element(rng);
        inner->requester = static_cast<NodeId>(rng.below(64));
        inner->request_id = rng.below(1u << 16);
        inner->bits = rng.below(1024);
        hop.inner = std::move(inner);
      }
      fn(hop);
    }
    {
      overlay::VertexMsg msg;
      msg.src = rand_virtual_id(rng);
      msg.dst_kind = static_cast<overlay::VKind>(rng.below(3));
      msg.header_bits = rng.below(1024);
      if (rng.below(4) != 0) {
        // Nested envelope: vertex -> route -> put, the deepest production
        // shape (tree edges forwarding a routed message).
        auto inner_hop = sim::make_payload<overlay::RouteHop>();
        inner_hop->target = rng.next();
        inner_hop->d = 4;
        inner_hop->rho = rng.below(16);
        auto leaf = sim::make_payload<dht::PutAck>();
        leaf->request_id = rng.below(1u << 16);
        inner_hop->inner = std::move(leaf);
        msg.inner = std::move(inner_hop);
      }
      fn(msg);
    }
    // --- membership --------------------------------------------------------
    {
      overlay::JoinReserve m;
      m.joiner = static_cast<NodeId>(rng.below(1u << 12));
      m.kind = static_cast<overlay::VKind>(rng.below(3));
      m.label = rng.next();
      fn(m);
    }
    {
      overlay::ReserveAck m;
      m.kind = static_cast<overlay::VKind>(rng.below(3));
      m.pred = rand_virtual_id(rng);
      m.succ = rand_virtual_id(rng);
      fn(m);
    }
    {
      overlay::JoinConfirm m;
      m.joiner = static_cast<NodeId>(rng.below(1u << 12));
      m.owner_kind = static_cast<overlay::VKind>(rng.below(3));
      m.first = rand_virtual_id(rng);
      m.last = rand_virtual_id(rng);
      fn(m);
    }
    {
      overlay::ArcTransfer m;
      m.kind = static_cast<overlay::VKind>(rng.below(3));
      m.arc = rand_arc(rng);
      fn(m);
    }
    {
      overlay::NeighborUpdate m;
      m.target_kind = static_cast<overlay::VKind>(rng.below(3));
      m.is_pred = rng.below(2) != 0;
      m.neighbor = rand_virtual_id(rng);
      fn(m);
    }
    {
      overlay::LeaveHandover m;
      m.pred_kind = static_cast<overlay::VKind>(rng.below(3));
      m.new_succ = rand_virtual_id(rng);
      m.arc = rand_arc(rng);
      fn(m);
    }
    // --- aggregation / broadcast instantiations ----------------------------
    // Up-only channels reuse one value type for Up and Down, so only the
    // Up payload may register (the Down twin would collide on the name —
    // exactly what the Aggregator's split_ gate prevents in production).
    {
      agg::AggUpMsg<kselect::KReply> m;
      m.epoch = rng.below(1u << 16);
      m.value = rand_kreply(rng);
      fn(m);
    }
    {
      agg::AggUpMsg<kselect::SampleUp> m;
      m.epoch = rng.below(1u << 16);
      m.value = kselect::SampleUp{rand_u64(rng)};
      fn(m);
    }
    {
      agg::AggDownMsg<kselect::SampleDown> m;
      m.epoch = rng.below(1u << 16);
      m.value.iv = rand_interval(rng);
      m.value.nprime = rng.below(1u << 20);
      fn(m);
    }
    {
      agg::BroadcastMsg<kselect::KStep> m;
      m.epoch = rng.below(1u << 16);
      m.value = rand_kstep(rng);
      fn(m);
    }
    {
      agg::AggUpMsg<seap::InsCountUp> m;
      m.epoch = rng.below(1u << 16);
      m.value = seap::InsCountUp{rand_u64(rng)};
      fn(m);
    }
    {
      agg::BroadcastMsg<seap::InsGo> m;
      m.epoch = rng.below(1u << 16);
      m.value = seap::InsGo{rng.below(1u << 20)};
      fn(m);
    }
    {
      agg::AggUpMsg<seap::DelCountUp> m;
      m.epoch = rng.below(1u << 16);
      m.value = seap::DelCountUp{rand_u64(rng)};
      fn(m);
    }
    {
      agg::AggDownMsg<seap::DelDown> m;
      m.epoch = rng.below(1u << 16);
      m.value.iv = rand_interval(rng);
      m.value.k_eff = rng.below(1u << 20);
      fn(m);
    }
    {
      agg::BroadcastMsg<seap::Thresh> m;
      m.epoch = rng.below(1u << 16);
      m.value.cycle = rng.below(1u << 20);
      m.value.threshold = rand_element(rng);
      m.value.k_eff = rand_u64(rng);
      fn(m);
    }
    {
      agg::AggUpMsg<seap::MoveCountUp> m;
      m.epoch = rng.below(1u << 16);
      m.value = seap::MoveCountUp{rand_u64(rng)};
      fn(m);
    }
    {
      agg::AggDownMsg<seap::MoveDown> m;
      m.epoch = rng.below(1u << 16);
      m.value = seap::MoveDown{rand_interval(rng)};
      fn(m);
    }
    {
      agg::AggUpMsg<skeap::SkeapUp> m;
      m.epoch = rng.below(1u << 16);
      m.value = skeap::SkeapUp{rand_batch(rng)};
      fn(m);
    }
    {
      const skeap::Batch batch = rand_batch(rng);
      skeap::AnchorState anchor(batch.num_priorities());
      agg::AggDownMsg<skeap::SkeapDown> m;
      m.epoch = rng.below(1u << 16);
      m.value = skeap::SkeapDown{anchor.assign(batch)};
      fn(m);
    }
    {
      agg::AggUpMsg<baselines::ProbeCount> m;
      m.epoch = rng.below(1u << 16);
      m.value = baselines::ProbeCount{rand_u64(rng)};
      fn(m);
    }
    {
      agg::BroadcastMsg<baselines::ProbeStep> m;
      m.epoch = rng.below(1u << 16);
      m.value.session = rng.below(1u << 20);
      m.value.snapshot = rng.below(2) != 0;
      m.value.pivot = rand_element(rng);
      fn(m);
    }
    // --- kselect routed payloads -------------------------------------------
    {
      kselect::SeedMsg m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.pos = rng.below(1u << 20);
      m.nprime = rng.below(1u << 20);
      m.c = rand_element(rng);
      fn(m);
    }
    {
      kselect::CopyMsg m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.i = rng.below(1u << 20);
      m.a = rng.below(1u << 20);
      m.b = rng.below(1u << 20);
      m.nprime = rng.below(1u << 20);
      m.c = rand_element(rng);
      m.parent_host = static_cast<NodeId>(rng.below(1u << 12));
      m.parent_mid = rng.below(1u << 20);
      fn(m);
    }
    {
      kselect::RdvMsg m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.i = rng.below(1u << 20);
      m.j = rng.below(1u << 20);
      m.c = rand_element(rng);
      m.back_host = static_cast<NodeId>(rng.below(1u << 12));
      fn(m);
    }
    {
      kselect::VoteMsg m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.i = rng.below(1u << 20);
      m.mid = rng.below(1u << 20);
      m.smaller = static_cast<std::uint32_t>(rng.below(1u << 16));
      m.larger = static_cast<std::uint32_t>(rng.below(1u << 16));
      fn(m);
    }
    {
      kselect::TreeSumMsg m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.i = rng.below(1u << 20);
      m.parent_mid = rng.below(1u << 20);
      m.L = rng.below(1u << 20);
      m.R = rng.below(1u << 20);
      fn(m);
    }
    {
      kselect::OrderPut m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.order = rng.below(1u << 20);
      m.c = rand_element(rng);
      fn(m);
    }
    {
      kselect::OrderGet m;
      m.session = rng.below(1u << 20);
      m.iter = static_cast<std::uint32_t>(rng.below(64));
      m.order = rng.below(1u << 20);
      m.back = static_cast<NodeId>(rng.below(1u << 12));
      m.tag = rng.below(1u << 20);
      fn(m);
    }
    {
      kselect::OrderReply m;
      m.tag = rng.below(1u << 20);
      m.c = rand_element(rng);
      fn(m);
    }
    // --- baselines ---------------------------------------------------------
    {
      baselines::CentralInsert m;
      m.element = rand_element(rng);
      fn(m);
    }
    {
      baselines::CentralDelete m;
      m.request_id = rand_u64(rng);
      fn(m);
    }
    {
      baselines::CentralReply m;
      m.request_id = rng.below(1u << 20);
      m.has_element = rng.below(2) != 0;
      if (m.has_element) m.element = rand_element(rng);
      fn(m);
    }
    {
      baselines::GossipSampleReq m;
      m.session = rng.below(1u << 20);
      fn(m);
    }
    {
      baselines::GossipSampleRep m;
      m.session = rng.below(1u << 20);
      m.alive = rng.below(2) != 0;
      m.value = rand_element(rng);
      fn(m);
    }
    {
      baselines::GossipCountReq m;
      m.session = rng.below(1u << 20);
      m.pivot = rand_element(rng);
      fn(m);
    }
    {
      baselines::GossipCountRep m;
      m.session = rng.below(1u << 20);
      m.leq = static_cast<std::uint32_t>(rng.below(2));
      m.alive = static_cast<std::uint32_t>(rng.below(2));
      fn(m);
    }
    {
      baselines::GossipPrune m;
      m.session = rng.below(1u << 20);
      m.lo = rand_element(rng);
      m.hi = rand_element(rng);
      fn(m);
    }
    {
      baselines::NoBatchOp m;
      m.is_insert = rng.below(2) != 0;
      m.prio = rand_u64(rng);
      m.origin = static_cast<NodeId>(rng.below(1u << 12));
      m.request_id = rand_u64(rng);
      m.at_kind = static_cast<overlay::VKind>(rng.below(3));
      fn(m);
    }
    {
      baselines::NoBatchGrant m;
      m.request_id = rng.below(1u << 20);
      m.bottom = rng.below(2) != 0;
      m.prio = rand_u64(rng);
      m.pos = rand_u64(rng);
      fn(m);
    }
    // --- this binary's own test payloads -----------------------------------
    fn(DupFirst{});
    fn(ThreadedPayload{});
  }
}

TEST(WireFuzz, EveryRegisteredActionRoundTripsByteExactly) {
  Rng rng(0xf0220ULL);
  std::set<sim::ActionId> covered;
  sweep_sample_payloads(rng, 24, [&](const sim::Payload& p) {
    expect_frame_roundtrip(p, &covered);
  });

  // Completeness: every action registered in this binary was fuzzed. A
  // payload type reachable from the headers above that the sweep misses
  // shows up here as an uncovered id with its name.
  const sim::ActionRegistry& reg = sim::ActionRegistry::instance();
  for (sim::ActionId id = 0; id < reg.size(); ++id) {
    EXPECT_TRUE(covered.count(id) != 0)
        << "registered action '" << reg.name(id) << "' (id " << id
        << ") was not covered by the round-trip fuzz";
  }
  EXPECT_GE(covered.size(), 40u);
}

// ---------------------------------------------------------------------------
// Truncation / corruption rejection
// ---------------------------------------------------------------------------

TEST(WireReject, TruncatedFramesNeverReproduceTheOriginal) {
  // A rich frame: routed envelope carrying a dht put (varints, fixed-width
  // fields, a recursive inner frame).
  overlay::RouteHop hop;
  hop.target = 0x0123456789abcdefULL;
  hop.d = 12;
  hop.rho = 0x5a5;
  hop.ideal = 0xfedcba9876543210ULL;
  hop.phase_a_left = 7;
  hop.phase_b_done = 3;
  hop.anchored = true;
  hop.at_kind = overlay::VKind::kRight;
  hop.origin = 5;
  hop.hops = 9;
  hop.header_bits = 44;
  auto inner = sim::make_payload<dht::PutRequest>();
  inner->element = Element{3, 12345};
  inner->requester = 2;
  inner->request_id = 77;
  inner->want_ack = true;
  inner->bits = 96;
  hop.inner = std::move(inner);

  const std::vector<std::uint8_t> full = frame_bytes(hop);
  ASSERT_GT(full.size(), 8u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    wire::WireReader r(full.data(), len);
    try {
      sim::PayloadPtr p = sim::decode_frame(r);
      // A prefix that happens to parse must at least be self-consistent —
      // and it can never be mistaken for the full frame.
      const std::vector<std::uint8_t> re = frame_bytes(*p);
      EXPECT_NE(re, full) << "truncation to " << len << " bytes undetected";
    } catch (const CheckFailure&) {
      // Rejected — the expected outcome for almost every cut point.
    }
  }
}

/// Append a *valid* CRC trailer over the current bytes, so a test can put
/// a deliberately malformed body behind a passing checksum and prove the
/// structural audit (padding, trailing bytes) rejects it on its own.
void reseal_crc(std::vector<std::uint8_t>& buf) {
  const std::uint32_t crc = wire::crc32c(buf.data(), buf.size());
  buf.push_back(static_cast<std::uint8_t>(crc >> 24));
  buf.push_back(static_cast<std::uint8_t>(crc >> 16));
  buf.push_back(static_cast<std::uint8_t>(crc >> 8));
  buf.push_back(static_cast<std::uint8_t>(crc));
}

TEST(WireReject, NonzeroPaddingIsRejected) {
  sim::ReliableAck ack;
  ack.acked_seq = 5;
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  w.gamma(ack.tag());
  w.note_frame_header_end();
  ack.encode(w);
  const std::uint64_t used = w.bit_count();
  w.finish();
  ASSERT_NE(used % 8, 0u) << "gamma tags have odd width; padding expected";
  buf.back() |= 1;  // corrupt the final padding bit
  reseal_crc(buf);  // valid trailer: the padding audit must reject alone
  wire::WireReader r(buf);
  EXPECT_THROW(sim::decode_frame(r), CheckFailure);
}

TEST(WireReject, TrailingBytesAreRejected) {
  sim::ReliableAck ack;
  ack.acked_seq = 5;
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  w.gamma(ack.tag());
  w.note_frame_header_end();
  ack.encode(w);
  w.finish();
  buf.push_back(0x00);  // a whole spare byte inside the protected region
  reseal_crc(buf);      // valid trailer: the length audit must reject alone
  wire::WireReader r(buf);
  EXPECT_THROW(sim::decode_frame(r), CheckFailure);
}

// ---------------------------------------------------------------------------
// CRC trailer + frame-decoder corruption fuzz (detect-or-reject)
// ---------------------------------------------------------------------------
// CI runs this suite together with WireFuzz under ASan/UBSan: the decoder
// must reject every mutation it can detect and must never mis-decode —
// a successful decode of mutated bytes is only acceptable when the
// mutation cancelled out and the bytes are the original frame.

TEST(WireCorruption, Crc32cMatchesTheKnownAnswerVector) {
  // The canonical CRC32C check vector (RFC 3720 appendix B.4).
  const char* s = "123456789";
  EXPECT_EQ(wire::crc32c(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xE3069283u);
  EXPECT_EQ(wire::crc32c(nullptr, 0), 0u);
}

TEST(WireCorruption, TrailerRoundTripsAndRejectsEveryByteFlip) {
  std::vector<std::uint8_t> buf;
  wire::WireWriter w(buf);
  w.bits(0xdeadbeefULL, 32);
  w.bits(0x5aULL, 8);
  w.finish();
  w.append_crc32c();
  {
    wire::WireReader r(buf);
    r.verify_crc32c_trailer();
    EXPECT_EQ(r.bits(32), 0xdeadbeefULL);
    EXPECT_EQ(r.bits(8), 0x5aULL);
    r.finish();
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::vector<std::uint8_t> m = buf;
    m[i] ^= 0xff;
    wire::WireReader r(m);
    EXPECT_THROW(r.verify_crc32c_trailer(), CheckFailure) << "byte " << i;
  }
}

TEST(WireCorruption, EverySingleAndDoubleBitFlipIsRejected) {
  // CRC32C has Hamming distance >= 4 at frame lengths this repo produces,
  // so 1- and 2-bit mutations are rejected *exhaustively*, not just with
  // high probability. Small frame => the full O(bits^2) sweep is cheap.
  sim::ReliableAck ack;
  ack.acked_seq = 0x5a5a;
  const std::vector<std::uint8_t> full = frame_bytes(ack);
  const std::size_t nbits = full.size() * 8;
  for (std::size_t i = 0; i < nbits; ++i) {
    std::vector<std::uint8_t> m1 = full;
    m1[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
    {
      wire::WireReader r(m1);
      EXPECT_THROW((void)sim::decode_frame(r), CheckFailure) << "bit " << i;
    }
    for (std::size_t j = i + 1; j < nbits; ++j) {
      std::vector<std::uint8_t> m2 = m1;
      m2[j / 8] ^= static_cast<std::uint8_t>(0x80u >> (j % 8));
      wire::WireReader r(m2);
      EXPECT_THROW((void)sim::decode_frame(r), CheckFailure)
          << "bits " << i << "," << j;
    }
  }
}

TEST(WireCorruption, FewBitFlipsAreRejectedForEveryPayloadType) {
  // The Hamming-distance guarantee, spot-checked across every registered
  // payload type (including the recursive envelope frames).
  Rng rng(0xc0dec0deULL);
  sweep_sample_payloads(rng, 4, [&](const sim::Payload& p) {
    const std::vector<std::uint8_t> full = frame_bytes(p);
    const std::uint64_t nbits = full.size() * 8;
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<std::uint8_t> m = full;
      const std::uint64_t flips = 1 + rng.below(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::uint64_t b = rng.below(nbits);
        m[b / 8] ^= static_cast<std::uint8_t>(0x80u >> (b % 8));
      }
      if (m == full) continue;  // flips landed on the same bit twice
      wire::WireReader r(m);
      EXPECT_THROW((void)sim::decode_frame(r), CheckFailure) << p.name();
    }
  });
}

TEST(WireCorruption, TruncationsAreRejectedForEveryPayloadType) {
  Rng rng(0x7a0bcafeULL);
  sweep_sample_payloads(rng, 1, [&](const sim::Payload& p) {
    const std::vector<std::uint8_t> full = frame_bytes(p);
    for (std::size_t len = 0; len < full.size(); ++len) {
      wire::WireReader r(full.data(), len);
      EXPECT_THROW((void)sim::decode_frame(r), CheckFailure)
          << p.name() << " truncated to " << len << " bytes";
    }
  });
}

TEST(WireCorruption, HeavyMutationsNeverMisdecode) {
  // Arbitrary cut + up to 16 bit flips per frame: the decoder must throw,
  // or — if it decodes — the bytes must be the untouched original (every
  // mutation cancelled). Anything else is a silent mis-decode.
  Rng rng(0xbadf00dULL);
  sweep_sample_payloads(rng, 2, [&](const sim::Payload& p) {
    const std::vector<std::uint8_t> full = frame_bytes(p);
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<std::uint8_t> m = full;
      if (rng.below(2) != 0 && !m.empty()) {
        m.resize(static_cast<std::size_t>(rng.below(m.size())));
      }
      const std::uint64_t nbits = m.size() * 8;
      const std::uint64_t flips = rng.below(17);
      for (std::uint64_t f = 0; f < flips && nbits != 0; ++f) {
        const std::uint64_t b = rng.below(nbits);
        m[b / 8] ^= static_cast<std::uint8_t>(0x80u >> (b % 8));
      }
      try {
        wire::WireReader r(m);
        sim::PayloadPtr q = sim::decode_frame(r);
        EXPECT_EQ(m, full) << p.name() << ": mutated frame decoded";
        EXPECT_EQ(frame_bytes(*q), full) << p.name();
      } catch (const CheckFailure&) {
        // Rejected — the expected outcome for every effective mutation.
      }
    }
  });
}

TEST(WireCorruption, RandomGarbageNeverDecodes) {
  // Arbitrary byte strings (the garbage-frame fault): detected with
  // probability 1 - 2^-32 per frame; deterministic seed, so this is a
  // fixed witness set, not a flaky probabilistic assertion.
  Rng rng(0x6a3ba6eULL);
  std::vector<std::uint8_t> buf;
  for (int rep = 0; rep < 2000; ++rep) {
    buf.resize(static_cast<std::size_t>(rng.below(64)));
    for (std::uint8_t& b : buf) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    wire::WireReader r(buf.data(), buf.size());
    EXPECT_THROW((void)sim::decode_frame(r), CheckFailure) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// Golden byte layouts — one payload per layer
// ---------------------------------------------------------------------------

TEST(WireGolden, BodyLayoutsArePinned) {
  // common: Element = gammau(prio) ++ delta(id).
  {
    std::vector<std::uint8_t> buf;
    wire::WireWriter w(buf);
    Element{3, 7}.encode(w);
    w.finish();
    EXPECT_EQ(buf, bits_to_bytes("00100" "00100000"));
  }
  // sim (transport): ReliableAck = leb(acked_seq).
  {
    sim::ReliableAck ack;
    ack.acked_seq = 5;
    EXPECT_EQ(body_bytes(ack), bits_to_bytes("00000101"));
  }
  // dht: PutAck = delta(request_id).
  {
    dht::PutAck ack;
    ack.request_id = 9;
    EXPECT_EQ(body_bytes(ack), bits_to_bytes("00100010"));
  }
  // overlay/membership: JoinReserve = leb(joiner) ++ kind:2 ++ label:64.
  {
    overlay::JoinReserve m;
    m.joiner = 2;
    m.kind = overlay::VKind::kRight;
    m.label = std::uint64_t{1} << 63;
    std::vector<std::uint8_t> expect{0x02, 0xA0};
    expect.resize(10, 0x00);
    EXPECT_EQ(body_bytes(m), expect);
  }
  // aggregation + skeap: AggUpMsg<SkeapUp> = leb(epoch) ++ Batch (gammas).
  {
    skeap::Batch batch(2);
    batch.record_insert(1);
    batch.record_delete();
    agg::AggUpMsg<skeap::SkeapUp> m;
    m.epoch = 1;
    m.value = skeap::SkeapUp{batch};
    EXPECT_EQ(body_bytes(m),
              bits_to_bytes("00000001"        // epoch leb(1)
                            "011"             // gamma(P = 2)
                            "010"             // gamma(1 entry)
                            "010"             // gamma(inserts[1] = 1)
                            "1"               // gamma(inserts[2] = 0)
                            "010"));          // gamma(deletes = 1)
  }
  // kselect: SampleUp = delta(count).
  {
    agg::AggUpMsg<kselect::SampleUp> m;
    m.epoch = 0;
    m.value = kselect::SampleUp{5};
    EXPECT_EQ(body_bytes(m), bits_to_bytes("00000000" "01110"));
  }
  // recovery: Heartbeat has an empty body.
  EXPECT_TRUE(body_bytes(recovery::Heartbeat{}).empty());
  // baselines: CentralDelete = delta(request_id).
  {
    baselines::CentralDelete m;
    m.request_id = 0;
    EXPECT_EQ(body_bytes(m), bits_to_bytes("1"));
  }
}

}  // namespace
}  // namespace sks
