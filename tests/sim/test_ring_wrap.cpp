// Ring-buffer wrap stress: the async pending queue stores messages in a
// power-of-two ring indexed by (round & mask). A message delayed by d must
// land exactly d rounds later even when the ring wraps many times and when
// max_delay sits right at / just past a power-of-two boundary (7, 8, 9 →
// ring sizes 8, 16, 16). We verify against a std::map<round, ...> oracle
// that replays the network's exact rng draw sequences (one range() draw
// from the delay stream per send, one below() draw from the shared stream
// per shuffle swap), so delivery rounds AND intra-round delivery order
// must match message for message.
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"

namespace sks::sim {
namespace {

struct Tagged final : Action<Tagged> {
  static constexpr const char* kActionName = "tagged";
  std::uint64_t seq = 0;
  std::uint64_t size_bits() const override { return 64; }

  void encode(wire::WireWriter& w) const override { w.leb(seq); }
  static Owned<Tagged> decode(wire::WireReader& r) {
    auto p = make_payload<Tagged>();
    p->seq = r.leb();
    return p;
  }
};

// (round, to, seq) of every delivery, in delivery order.
using Log = std::vector<std::tuple<std::uint64_t, NodeId, std::uint64_t>>;

class RecorderNode : public DispatchingNode {
 public:
  explicit RecorderNode(Log* log) {
    on<Tagged>([this, log](NodeId, Owned<Tagged> msg) {
      log->emplace_back(net().round(), id(), msg->seq);
    });
  }
};

// Independent reimplementation of the pending queue: absolute rounds in a
// std::map, no ring arithmetic. Mirrors Network's rng consumption exactly.
class Oracle {
 public:
  Oracle(std::uint64_t seed, std::uint64_t max_delay)
      : rng_(seed),
        delay_rng_(seed ^ 0xd31a7de1a75eedULL),
        max_delay_(max_delay) {}

  void send(NodeId to, std::uint64_t seq) {
    const std::uint64_t delay = delay_rng_.range(1, max_delay_);
    pending_[round_ + delay].push_back({to, seq});
  }

  void step(Log* log) {
    ++round_;
    auto it = pending_.find(round_);
    if (it == pending_.end()) return;
    std::vector<Env> due = std::move(it->second);
    pending_.erase(it);
    for (std::size_t i = due.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i));
      std::swap(due[i - 1], due[j]);
    }
    for (const auto& e : due) log->emplace_back(round_, e.to, e.seq);
  }

  bool idle() const { return pending_.empty(); }

 private:
  struct Env {
    NodeId to;
    std::uint64_t seq;
  };
  Rng rng_;
  Rng delay_rng_;
  std::uint64_t max_delay_;
  std::uint64_t round_ = 0;
  std::map<std::uint64_t, std::vector<Env>> pending_;
};

void stress(std::uint64_t max_delay) {
  SCOPED_TRACE("max_delay=" + std::to_string(max_delay));
  constexpr std::size_t kNodes = 5;
  constexpr std::uint64_t kSeed = 0xabcdef;

  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = max_delay;
  cfg.seed = kSeed;
  Network net(cfg);
  Log actual;
  for (std::size_t i = 0; i < kNodes; ++i) {
    net.add_node(std::make_unique<RecorderNode>(&actual));
  }

  Oracle oracle(kSeed, max_delay);
  Log expected;

  // A separate rng drives the schedule so the network's own stream is
  // disturbed only by the draws the oracle mirrors.
  Rng schedule(99);
  std::uint64_t seq = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint64_t burst = schedule.below(4);  // 0..3 sends, then step
    for (std::uint64_t b = 0; b < burst; ++b) {
      const NodeId from = static_cast<NodeId>(schedule.below(kNodes));
      const NodeId to = static_cast<NodeId>(schedule.below(kNodes));
      auto msg = make_payload<Tagged>();
      msg->seq = seq;
      net.send(from, to, std::move(msg));
      oracle.send(to, seq);
      ++seq;
    }
    net.step();
    oracle.step(&expected);
  }
  // Drain whatever is still in flight.
  while (!net.idle() || !oracle.idle()) {
    net.step();
    oracle.step(&expected);
  }

  ASSERT_EQ(actual.size(), static_cast<std::size_t>(seq));
  EXPECT_EQ(actual, expected);
}

TEST(RingWrap, MaxDelayBelowRingBoundary) { stress(7); }
TEST(RingWrap, MaxDelayAtRingBoundary) { stress(8); }
TEST(RingWrap, MaxDelayAboveRingBoundary) { stress(9); }

}  // namespace
}  // namespace sks::sim
