// The tentpole guarantee of the zero-allocation message path: once the
// payload pools and queue capacities are warm, a steady-state
// send → step → deliver cycle performs zero heap allocations.
//
// This test replaces the global operator new/delete to count allocations,
// which affects the whole binary — hence its own test executable (see
// tests/CMakeLists.txt). Counting is gated by a flag so gtest's own
// bookkeeping outside the measured window doesn't register.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include <gtest/gtest.h>

#include "sim/dispatch.hpp"
#include "sim/network.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sks::sim {
namespace {

struct NullPayload final : Action<NullPayload> {
  static constexpr const char* kActionName = "null";
  std::uint64_t size_bits() const override { return 8; }

  void encode(wire::WireWriter&) const override {}
  static Owned<NullPayload> decode(wire::WireReader&) {
    return make_payload<NullPayload>();
  }
};

class SinkNode : public DispatchingNode {
 public:
  SinkNode() {
    on<NullPayload>([](NodeId, Owned<NullPayload>) {});
  }
  void fire(NodeId to) { send(to, make_payload<NullPayload>()); }
  /// Same payload over the fire-and-forget background lane (the failure
  /// detector's heartbeat path).
  void fire_bg(NodeId to) {
    net().send_background(id(), to, make_payload<NullPayload>());
  }
};

TEST(ZeroAlloc, SteadyStateSendDeliverAllocatesNothing) {
  Network net;
  // The tracer ships disabled; the zero-alloc guarantee below holds with
  // it compiled into the message path (one predictable branch per hook).
  ASSERT_FALSE(net.tracer().enabled());
  net.add_node(std::make_unique<SinkNode>());
  const NodeId b = net.add_node(std::make_unique<SinkNode>());

  auto cycle = [&] {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(0).fire(b);
    net.run_until_idle();
  };

  // Warm up: fills the payload pool freelist, the pending-slot vectors'
  // capacity and the step() scratch vector.
  for (int w = 0; w < 4; ++w) cycle();

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "steady-state message path performed heap allocations";
}

// The async ring path (randomized delays) must be allocation-free too once
// every ring slot has seen its peak occupancy.
TEST(ZeroAlloc, SteadyStateAsyncAllocatesNothing) {
  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = 8;
  Network net(cfg);
  const NodeId b = net.add_node(std::make_unique<SinkNode>());
  net.add_node(std::make_unique<SinkNode>());

  auto cycle = [&] {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(1).fire(b);
    net.run_until_idle();
  };

  // The ring slots and the step() scratch vector trade buffers on every
  // drain, so capacities circulate; warm up long enough that every buffer
  // in rotation has seen the peak per-slot occupancy.
  for (int w = 0; w < 32; ++w) cycle();

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "async steady-state message path performed heap allocations";
}

// The fault-injection substrate is compiled into the message path
// unconditionally; with an (explicit) all-zero FaultPlan and the reliable
// transport disabled it must cost no allocations either — the hot path is
// gated behind cached booleans, never behind per-message heap work.
TEST(ZeroAlloc, InactiveFaultPlanAndDisabledReliableAllocateNothing) {
  NetworkConfig cfg;
  cfg.faults = FaultPlan{};          // explicit, still all-zero
  cfg.reliable = ReliableConfig{};   // explicit, still disabled
  ASSERT_FALSE(cfg.faults.active());
  ASSERT_FALSE(cfg.reliable.enabled);
  Network net(cfg);
  net.add_node(std::make_unique<SinkNode>());
  const NodeId b = net.add_node(std::make_unique<SinkNode>());

  auto cycle = [&] {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(0).fire(b);
    net.run_until_idle();
  };

  for (int w = 0; w < 4; ++w) cycle();

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "disabled fault machinery leaked allocations into the hot path";
}

// The guarantee must survive the sharded executor: with the node set
// partitioned over 4 shards, cross-shard sends ride per-shard outboxes
// that are merged at the round barrier — all of it from recycled
// capacity. Serial execution (threads=1) keeps the check deterministic.
TEST(ParallelZeroAlloc, ShardedSteadyStateAllocatesNothing) {
  NetworkConfig cfg;
  cfg.shards = 4;
  cfg.threads = 1;
  Network net(cfg);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(net.add_node(std::make_unique<SinkNode>()));
  }
  ASSERT_EQ(net.num_shards(), 1u) << "shards latch on first send/step";

  auto cycle = [&] {
    // Every node fires at its shard-distance-2 neighbor, so every round
    // carries cross-shard traffic through the outbox merge.
    for (int i = 0; i < 16; ++i) {
      for (NodeId v : ids) {
        net.node_as<SinkNode>(v).fire(ids[(v + 2) % ids.size()]);
      }
    }
    net.run_until_idle();
  };

  for (int w = 0; w < 8; ++w) cycle();
  EXPECT_EQ(net.num_shards(), 4u);

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "sharded steady-state message path performed heap allocations";
}

// Same scenario on 2 worker threads: payload blocks now migrate between
// per-thread freelists through the global overflow list, so the warmed-up
// block population covers every thread's worst-case demand. A longer
// warm-up lets the population reach that fixed point under arbitrary
// shard→thread interleavings before counting starts.
TEST(ParallelZeroAlloc, ShardedMultiThreadSteadyStateAllocatesNothing) {
  NetworkConfig cfg;
  cfg.shards = 4;
  cfg.threads = 2;
  Network net(cfg);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(net.add_node(std::make_unique<SinkNode>()));
  }

  auto cycle = [&] {
    for (int i = 0; i < 16; ++i) {
      for (NodeId v : ids) {
        net.node_as<SinkNode>(v).fire(ids[(v + 3) % ids.size()]);
      }
    }
    net.run_until_idle();
  };

  for (int w = 0; w < 32; ++w) cycle();
  EXPECT_EQ(net.num_threads(), 2u);

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "multi-threaded steady-state message path performed heap "
         "allocations";
}

// Failure-detector heartbeats ride the background lane (send_background):
// excluded from quiescence but pooled and queued like data. A steady
// heartbeat stream must recycle payloads and slot capacity just as the
// data path does — the detector may run forever without touching the heap.
TEST(ZeroAlloc, SteadyStateBackgroundLaneAllocatesNothing) {
  Network net;
  net.add_node(std::make_unique<SinkNode>());
  const NodeId b = net.add_node(std::make_unique<SinkNode>());

  auto cycle = [&] {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(0).fire_bg(b);
    // Background traffic doesn't count toward idle; step a fixed number
    // of rounds to drain it instead of run_until_idle.
    for (int s = 0; s < 4; ++s) net.step();
  };

  for (int w = 0; w < 4; ++w) cycle();

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 16; ++r) cycle();
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "background (heartbeat) lane performed steady-state allocations";
}

}  // namespace
}  // namespace sks::sim
