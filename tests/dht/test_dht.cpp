#include "dht/dht.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/hash.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::dht {
namespace {

class DhtNode : public overlay::OverlayNode {
 public:
  DhtNode(overlay::RouteParams params, DhtWidths widths)
      : OverlayNode(params), dht(*this, widths) {}
  DhtComponent dht;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 3,
                   sim::DeliveryMode mode = sim::DeliveryMode::kSynchronous) {
    sim::NetworkConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    hash = std::make_unique<HashFunction>(seed);
    auto links = overlay::build_topology(n, *hash);
    const auto params = overlay::RouteParams::for_system(n);
    const auto widths = DhtWidths::for_system(n, 1u << 20, 1u << 20);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<DhtNode>(params, widths));
      net->node_as<DhtNode>(id).install_links(links[i]);
    }
  }

  DhtNode& node(NodeId id) { return net->node_as<DhtNode>(id); }

  std::unique_ptr<sim::Network> net;
  std::unique_ptr<HashFunction> hash;
};

TEST(Dht, PutThenGetRoundTrips) {
  Fixture f(16);
  const Point key = f.hash->point(12345);
  f.node(2).dht.put(key, Element{7, 99});
  f.net->run_until_idle();

  std::vector<Element> got;
  f.node(5).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Element{7, 99}));
}

TEST(Dht, GetBeforePutWaitsAtOwner) {
  Fixture f(16);
  const Point key = f.hash->point(777);

  std::vector<Element> got;
  f.node(1).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  EXPECT_TRUE(got.empty());

  // Exactly one node should be holding the waiting get.
  std::size_t waiting = 0;
  for (NodeId v = 0; v < 16; ++v) waiting += f.node(v).dht.waiting_gets();
  EXPECT_EQ(waiting, 1u);

  f.node(9).dht.put(key, Element{1, 42});
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Element{1, 42}));
}

TEST(Dht, GetRemovesTheElement) {
  Fixture f(8);
  const Point key = f.hash->point(55);
  f.node(0).dht.put(key, Element{3, 1});
  f.net->run_until_idle();

  std::vector<Element> got;
  f.node(0).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), 1u);

  // A second get for the same key must wait (element was removed).
  f.node(0).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  EXPECT_EQ(got.size(), 1u);
  std::size_t waiting = 0;
  for (NodeId v = 0; v < 8; ++v) waiting += f.node(v).dht.waiting_gets();
  EXPECT_EQ(waiting, 1u);
}

TEST(Dht, PutAckConfirmsWrite) {
  Fixture f(8);
  int acks = 0;
  f.node(3).dht.put(f.hash->point(1), Element{1, 1}, [&] { ++acks; });
  f.node(3).dht.put(f.hash->point(2), Element{1, 2}, [&] { ++acks; });
  f.net->run_until_idle();
  EXPECT_EQ(acks, 2);
}

TEST(Dht, ManyKeysRoundTripUnderAsynchrony) {
  Fixture f(32, /*seed=*/17, sim::DeliveryMode::kAsynchronous);
  constexpr std::uint64_t kOps = 300;
  std::vector<Element> got;

  // Interleave: issue all gets first for odd keys (they must wait), then
  // all puts — exercising the wait path heavily under reordering.
  for (std::uint64_t i = 1; i < kOps; i += 2) {
    f.node(static_cast<NodeId>(i % 32))
        .dht.get(f.hash->point(i), [&got](const Element& e) {
          got.push_back(e);
        });
  }
  for (std::uint64_t i = 0; i < kOps; ++i) {
    f.node(static_cast<NodeId>((i * 7) % 32))
        .dht.put(f.hash->point(i), Element{i, i});
  }
  for (std::uint64_t i = 0; i < kOps; i += 2) {
    f.node(static_cast<NodeId>(i % 32))
        .dht.get(f.hash->point(i), [&got](const Element& e) {
          got.push_back(e);
        });
  }
  f.net->run_until_idle();

  ASSERT_EQ(got.size(), kOps);
  std::sort(got.begin(), got.end());
  for (std::uint64_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(got[i], (Element{i, i}));
  }
  for (NodeId v = 0; v < 32; ++v) {
    EXPECT_EQ(f.node(v).dht.stored_count(), 0u);
    EXPECT_EQ(f.node(v).dht.waiting_gets(), 0u);
    EXPECT_EQ(f.node(v).dht.pending_client_ops(), 0u);
  }
}

TEST(Dht, DuplicateKeysStoreMultipleElements) {
  Fixture f(8);
  const Point key = f.hash->point(123);
  f.node(0).dht.put(key, Element{1, 10});
  f.node(1).dht.put(key, Element{2, 20});
  f.net->run_until_idle();

  std::vector<Element> got;
  f.node(2).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.node(3).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), 2u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], (Element{1, 10}));
  EXPECT_EQ(got[1], (Element{2, 20}));
}

// Lemma 2.2(iv): m elements are stored uniformly — each node stores m/n in
// expectation. We check the empirical max load stays within a polylog
// factor of the mean (E9 measures this in detail).
TEST(Dht, FairnessUniformLoad) {
  const std::size_t n = 64;
  Fixture f(n, /*seed=*/23);
  const std::uint64_t m = 64 * 100;
  for (std::uint64_t i = 0; i < m; ++i) {
    f.node(static_cast<NodeId>(i % n)).dht.put(f.hash->point(900000 + i),
                                               Element{i, i});
  }
  f.net->run_until_idle();

  std::size_t total = 0, max_load = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t load = f.node(v).dht.stored_count();
    total += load;
    max_load = std::max(max_load, load);
  }
  EXPECT_EQ(total, m);
  const double mean = static_cast<double>(m) / static_cast<double>(n);
  // Random arc lengths give max load ~ mean * O(log n) in the worst case;
  // 6x the mean is a generous but meaningful envelope for n=64.
  EXPECT_LT(static_cast<double>(max_load), 6.0 * mean);
}

}  // namespace
}  // namespace sks::dht
