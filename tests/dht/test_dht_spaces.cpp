// DHT keyspace isolation and the local helpers Seap's DeleteMin phase
// relies on (elements_in / count_leq / take_leq) plus arc extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "dht/dht.hpp"
#include "overlay/topology.hpp"
#include "sim/network.hpp"

namespace sks::dht {
namespace {

class DhtNode : public overlay::OverlayNode {
 public:
  DhtNode(overlay::RouteParams params, DhtWidths widths)
      : OverlayNode(params), dht(*this, widths) {}
  DhtComponent dht;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 3) {
    sim::NetworkConfig cfg;
    cfg.seed = seed;
    net = std::make_unique<sim::Network>(cfg);
    hash = std::make_unique<HashFunction>(seed);
    auto links = overlay::build_topology(n, *hash);
    const auto params = overlay::RouteParams::for_system(n);
    const auto widths = DhtWidths::for_system(n, 1u << 20, 1u << 20);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<DhtNode>(params, widths));
      net->node_as<DhtNode>(id).install_links(links[i]);
    }
    this->n = n;
  }
  DhtNode& node(NodeId id) { return net->node_as<DhtNode>(id); }
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<HashFunction> hash;
  std::size_t n = 0;
};

TEST(DhtSpaces, SameKeyDifferentSpacesDoNotCollide) {
  Fixture f(8);
  const Point key = f.hash->point(1);
  f.node(0).dht.put(key, Element{1, 100}, nullptr, 0);
  f.node(1).dht.put(key, Element{2, 200}, nullptr, 1);
  f.net->run_until_idle();

  std::vector<Element> got0, got1;
  f.node(2).dht.get(key, [&](const Element& e) { got0.push_back(e); }, 0);
  f.node(3).dht.get(key, [&](const Element& e) { got1.push_back(e); }, 1);
  f.net->run_until_idle();
  ASSERT_EQ(got0.size(), 1u);
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_EQ(got0[0], (Element{1, 100}));
  EXPECT_EQ(got1[0], (Element{2, 200}));
}

TEST(DhtSpaces, WaitingGetInOneSpaceIgnoresPutInAnother) {
  Fixture f(8);
  const Point key = f.hash->point(7);
  std::vector<Element> got;
  f.node(0).dht.get(key, [&](const Element& e) { got.push_back(e); }, 1);
  f.net->run_until_idle();

  f.node(1).dht.put(key, Element{9, 9}, nullptr, 0);  // wrong space
  f.net->run_until_idle();
  EXPECT_TRUE(got.empty());

  f.node(1).dht.put(key, Element{8, 8}, nullptr, 1);  // right space
  f.net->run_until_idle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Element{8, 8}));
}

TEST(DhtSpaces, ElementsInEnumeratesOnlyOneSpace) {
  Fixture f(4);
  Rng rng(4);
  std::size_t in_zero = 0, in_one = 0;
  for (int i = 0; i < 60; ++i) {
    const std::uint8_t space = rng.flip(0.5) ? 0 : 1;
    (space == 0 ? in_zero : in_one)++;
    f.node(0).dht.put(rng.next(),
                      Element{rng.next(), static_cast<ElementId>(i)}, nullptr,
                      space);
  }
  f.net->run_until_idle();
  std::size_t found0 = 0, found1 = 0;
  for (NodeId v = 0; v < 4; ++v) {
    found0 += f.node(v).dht.elements_in(0).size();
    found1 += f.node(v).dht.elements_in(1).size();
  }
  EXPECT_EQ(found0, in_zero);
  EXPECT_EQ(found1, in_one);
}

TEST(DhtSpaces, CountAndTakeLeqAgree) {
  Fixture f(6);
  Rng rng(5);
  std::vector<Element> all;
  for (int i = 0; i < 100; ++i) {
    const Element e{rng.range(1, 1000), static_cast<ElementId>(i + 1)};
    all.push_back(e);
    f.node(static_cast<NodeId>(rng.below(6))).dht.put(rng.next(), e);
  }
  f.net->run_until_idle();

  const Element threshold{500, ~0ULL};
  std::size_t expected = 0;
  for (const auto& e : all) expected += (e <= threshold);

  std::size_t counted = 0;
  for (NodeId v = 0; v < 6; ++v) {
    counted += f.node(v).dht.count_leq(0, threshold);
  }
  EXPECT_EQ(counted, expected);

  std::vector<Element> taken;
  for (NodeId v = 0; v < 6; ++v) {
    auto part = f.node(v).dht.take_leq(0, threshold);
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
    taken.insert(taken.end(), part.begin(), part.end());
  }
  EXPECT_EQ(taken.size(), expected);
  for (const auto& e : taken) EXPECT_LE(e, threshold);

  // Everything else is still stored; nothing <= threshold remains.
  std::size_t rest = 0;
  for (NodeId v = 0; v < 6; ++v) {
    rest += f.node(v).dht.stored_count();
    EXPECT_EQ(f.node(v).dht.count_leq(0, threshold), 0u);
  }
  EXPECT_EQ(rest, all.size() - expected);
}

TEST(DhtSpaces, ExtractAbsorbRoundTripsArc) {
  Fixture f(4);
  Rng rng(6);
  for (int i = 0; i < 80; ++i) {
    f.node(0).dht.put(rng.next(),
                      Element{rng.next(), static_cast<ElementId>(i)});
  }
  f.net->run_until_idle();

  // Move node 2's entire left-vertex store out and back in.
  auto& dht2 = f.node(2).dht;
  const std::size_t before = dht2.stored_count();
  auto arc = dht2.extract_arc(overlay::VKind::kLeft, 0, 0);  // lo==hi: all
  const std::size_t moved = arc.element_count();
  EXPECT_EQ(dht2.stored_count(), before - moved);
  dht2.absorb_arc(overlay::VKind::kLeft, std::move(arc));
  EXPECT_EQ(dht2.stored_count(), before);
}

TEST(DhtSpaces, AbsorbServesParkedGets) {
  Fixture f(4);
  const Point key = f.hash->point(99);
  std::vector<Element> got;
  f.node(1).dht.get(key, [&](const Element& e) { got.push_back(e); });
  f.net->run_until_idle();
  ASSERT_TRUE(got.empty());

  // Find where the get parked and hand that vertex an arc containing the
  // matching element: the get must be served by absorb itself.
  for (NodeId v = 0; v < 4; ++v) {
    for (overlay::VKind k : overlay::kAllKinds) {
      auto arc = f.node(v).dht.extract_arc(k, 0, 0);
      bool has_waiter = false;
      for (const auto& w : arc.waiting) has_waiter |= !w.empty();
      if (!has_waiter) {
        f.node(v).dht.absorb_arc(k, std::move(arc));  // put it back
        continue;
      }
      arc.elements[0][key].push_back(Element{5, 55});
      f.node(v).dht.absorb_arc(k, std::move(arc));
      f.net->run_until_idle();
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], (Element{5, 55}));
      return;
    }
  }
  FAIL() << "parked get not found";
}

}  // namespace
}  // namespace sks::dht
