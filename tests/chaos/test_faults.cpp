// Fault-injection mechanics on toy nodes: drops, duplicates, delay
// spikes (and the pending-ring growth they force), partitions, crashes
// and restarts — plus the reliable transport restoring exactly-once
// delivery over each fault class, and the improved quiescence-failure
// stall report.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/dispatch.hpp"
#include "sim/network.hpp"
#include "trace/summary.hpp"
#include "trace/text.hpp"

namespace sks::sim {
namespace {

struct Ping final : Action<Ping> {
  static constexpr const char* kActionName = "chaos.ping";
  std::uint64_t value = 0;
  std::uint64_t size_bits() const override { return 32; }

  void encode(wire::WireWriter& w) const override { w.leb(value); }
  static Owned<Ping> decode(wire::WireReader& r) {
    auto p = make_payload<Ping>();
    p->value = r.leb();
    return p;
  }
};

class SinkNode : public DispatchingNode {
 public:
  SinkNode() {
    on<Ping>([this](NodeId, Owned<Ping> p) { received.push_back(p->value); });
  }

  void on_activate() override { ++activations; }

  void ping(NodeId to, std::uint64_t v) {
    auto p = make_payload<Ping>();
    p->value = v;
    send(to, std::move(p));
  }

  std::vector<std::uint64_t> received;
  std::uint64_t activations = 0;
};

Network make_net(NetworkConfig cfg, NodeId* a, NodeId* b) {
  Network net(cfg);
  *a = net.add_node(std::make_unique<SinkNode>());
  *b = net.add_node(std::make_unique<SinkNode>());
  return net;
}

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Faults, AllZeroPlanIsInactive) {
  EXPECT_FALSE(FaultPlan{}.active());
  FaultPlan drops;
  drops.drop_prob = 0.1;
  EXPECT_TRUE(drops.active());
  FaultPlan crash;
  crash.crashes.push_back({0, 5, 0});
  EXPECT_TRUE(crash.active());
}

TEST(Faults, DropsLoseMessagesOnTheRawChannel) {
  NetworkConfig cfg;
  cfg.seed = 11;
  cfg.faults.drop_prob = 0.3;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  for (std::uint64_t i = 0; i < 500; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  const auto& got = net.node_as<SinkNode>(b).received;
  EXPECT_LT(got.size(), 500u);
  EXPECT_GT(got.size(), 200u);  // ~30% loss, not total loss
  EXPECT_EQ(got.size() + net.metrics().dropped(), 500u);
}

TEST(Faults, DuplicatesDeliverExtraCopiesOnTheRawChannel) {
  NetworkConfig cfg;
  cfg.seed = 12;
  cfg.faults.duplicate_prob = 0.4;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  for (std::uint64_t i = 0; i < 300; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  const auto& got = net.node_as<SinkNode>(b).received;
  EXPECT_GT(got.size(), 300u);
  EXPECT_EQ(got.size(), 300u + net.metrics().duplicated());
}

TEST(Faults, ReliableTransportIsExactlyOnceUnderDrops) {
  for (const double p : {0.1, 0.2}) {
    for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
      NetworkConfig cfg;
      cfg.seed = seed;
      cfg.faults.drop_prob = p;
      cfg.reliable.enabled = true;
      NodeId a, b;
      Network net = make_net(cfg, &a, &b);
      for (std::uint64_t i = 0; i < 200; ++i) {
        net.node_as<SinkNode>(a).ping(b, i);
      }
      net.run_until_idle();
      auto got = sorted(net.node_as<SinkNode>(b).received);
      ASSERT_EQ(got.size(), 200u) << "p=" << p << " seed=" << seed;
      for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(got[i], i);
      EXPECT_GT(net.metrics().retransmitted(), 0u);
      EXPECT_EQ(net.reliable().unacked(), 0u);
    }
  }
}

TEST(Faults, ReliableTransportSuppressesChannelDuplicates) {
  NetworkConfig cfg;
  cfg.seed = 13;
  cfg.faults.duplicate_prob = 0.4;
  cfg.reliable.enabled = true;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  for (std::uint64_t i = 0; i < 300; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  auto got = sorted(net.node_as<SinkNode>(b).received);
  ASSERT_EQ(got.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(net.metrics().dup_suppressed(), 0u);
}

TEST(Faults, DelaySpikesGrowThePendingRing) {
  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = 4;
  cfg.seed = 14;
  cfg.faults.spike_prob = 0.2;
  cfg.faults.spike_min = 8;
  cfg.faults.spike_max = 512;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  const std::size_t cap0 = net.pending_capacity();
  for (std::uint64_t i = 0; i < 400; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  // A spike larger than the initial ring must have forced growth, and
  // despite the re-slotting nothing may be lost or duplicated.
  EXPECT_GT(net.pending_capacity(), cap0);
  auto got = sorted(net.node_as<SinkNode>(b).received);
  ASSERT_EQ(got.size(), 400u);
  for (std::uint64_t i = 0; i < 400; ++i) EXPECT_EQ(got[i], i);
}

TEST(Faults, PartitionCutsLinksBothWaysWhileActive) {
  NetworkConfig cfg;
  cfg.seed = 15;
  Partition part;
  part.from_round = 0;
  part.until_round = 40;
  part.side_a = {0};
  part.side_b = {1};
  cfg.faults.partitions.push_back(part);
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 1);  // round 0: cut
  net.node_as<SinkNode>(b).ping(a, 2);  // other direction: also cut
  net.run_until_idle();
  EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  EXPECT_TRUE(net.node_as<SinkNode>(a).received.empty());
  EXPECT_EQ(net.metrics().dropped(), 2u);
  // Heal: step past the partition window, traffic flows again.
  while (net.round() < 40) net.step();
  net.node_as<SinkNode>(a).ping(b, 3);
  net.run_until_idle();
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{3}));
}

TEST(Faults, ReliableTransportBridgesAPartition) {
  NetworkConfig cfg;
  cfg.seed = 16;
  cfg.reliable.enabled = true;
  Partition part;
  part.from_round = 0;
  part.until_round = 40;
  part.side_a = {0};
  part.side_b = {1};
  cfg.faults.partitions.push_back(part);
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 7);  // swallowed by the partition
  const std::uint64_t rounds = net.run_until_idle();
  // Retransmissions kept trying; the first one after the heal got through.
  EXPECT_GT(rounds, 40u);
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{7}));
  EXPECT_GT(net.metrics().retransmitted(), 0u);
  EXPECT_EQ(net.reliable().unacked(), 0u);
}

TEST(Faults, CrashedNodeBlackholesAndSkipsActivation) {
  NodeId a, b;
  Network net = make_net(NetworkConfig{}, &a, &b);
  net.step();
  const std::uint64_t act0 = net.node_as<SinkNode>(b).activations;
  EXPECT_EQ(act0, 1u);
  net.crash_node(b);
  EXPECT_TRUE(net.is_crashed(b));
  net.node_as<SinkNode>(a).ping(b, 1);
  net.run_until_idle();
  EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  EXPECT_EQ(net.metrics().dropped(), 1u);
  EXPECT_EQ(net.node_as<SinkNode>(b).activations, act0)
      << "crashed nodes must not be activated";
  // The live node keeps being activated.
  EXPECT_GT(net.node_as<SinkNode>(a).activations, act0);
  net.restart_node(b);
  EXPECT_FALSE(net.is_crashed(b));
  net.node_as<SinkNode>(a).ping(b, 2);
  net.run_until_idle();
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{2}));
  EXPECT_GT(net.node_as<SinkNode>(b).activations, act0);
}

TEST(Faults, ReliableTransportBridgesACrashRestart) {
  NetworkConfig cfg;
  cfg.seed = 17;
  cfg.reliable.enabled = true;
  cfg.faults.crashes.push_back({1, 2, 12});  // b down for rounds [2, 12)
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  while (net.round() < 3) net.step();  // b is down by now
  ASSERT_TRUE(net.is_crashed(b));
  net.node_as<SinkNode>(a).ping(b, 9);
  net.run_until_idle();
  // idle() waits for the scheduled restart even though the first copy was
  // blackholed, and the retransmission after round 12 lands exactly once.
  EXPECT_GE(net.round(), 12u);
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{9}));
  EXPECT_GT(net.metrics().retransmitted(), 0u);
  EXPECT_EQ(net.reliable().unacked(), 0u);
}

TEST(Faults, ScheduleCrashRejectsPastRounds) {
  NodeId a, b;
  Network net = make_net(NetworkConfig{}, &a, &b);
  net.step();
  net.step();
  EXPECT_THROW(net.schedule_crash({b, 1, 0}), CheckFailure);
  EXPECT_THROW(net.schedule_crash({b, 5, 4}), CheckFailure);
  net.schedule_crash({b, 5, 7});
  while (net.round() < 6) net.step();
  EXPECT_TRUE(net.is_crashed(b));
  net.run_until_idle();  // waits for the scheduled restart
  EXPECT_FALSE(net.is_crashed(b));
}

TEST(Faults, StallReportNamesActionsDestinationsAndCrashes) {
  NetworkConfig cfg;
  cfg.seed = 18;
  cfg.reliable.enabled = true;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.crash_node(b);  // crash-stop: never comes back
  net.node_as<SinkNode>(a).ping(b, 1);
  try {
    net.run_until_idle(200);
    FAIL() << "expected the deadlock detector to fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did not quiesce"), std::string::npos) << what;
    EXPECT_NE(what.find("chaos.ping"), std::string::npos)
        << "stall report must name the stuck action: " << what;
    EXPECT_NE(what.find("unacked reliable record"), std::string::npos) << what;
    EXPECT_NE(what.find("(dest crashed)"), std::string::npos) << what;
    EXPECT_NE(what.find("crashed node(s): v1"), std::string::npos) << what;
  }
}

TEST(Faults, QuiescenceIgnoresPureAckTraffic) {
  NetworkConfig cfg;
  cfg.seed = 19;
  cfg.reliable.enabled = true;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 1);
  const std::uint64_t rounds = net.run_until_idle();
  // One data hop + nothing else: the ack must not add rounds of its own
  // (it may still be in flight when idle() turns true).
  EXPECT_LE(rounds, 2u);
  EXPECT_EQ(net.node_as<SinkNode>(b).received.size(), 1u);
  // Leftover acks are delivered harmlessly if stepping resumes.
  net.step();
  net.step();
  EXPECT_TRUE(net.idle());
}

TEST(Faults, BoundedAttemptsAbandonUndeliverableRecords) {
  NetworkConfig cfg;
  cfg.seed = 20;
  cfg.reliable.enabled = true;
  cfg.reliable.max_attempts = 3;
  Partition part;
  part.from_round = 0;
  part.until_round = ~0ull;  // permanent partition
  part.side_a = {0};
  part.side_b = {1};
  cfg.faults.partitions.push_back(part);
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 1);
  const std::uint64_t rounds = net.run_until_idle();
  // The sender stopped retrying, so the network still quiesces.
  EXPECT_LT(rounds, 200u);
  EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  EXPECT_EQ(net.metrics().abandoned(), 1u);
  EXPECT_EQ(net.reliable().unacked(), 0u);
}

TEST(Faults, FaultyRunsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.mode = DeliveryMode::kAsynchronous;
    cfg.seed = seed;
    cfg.faults.drop_prob = 0.15;
    cfg.faults.duplicate_prob = 0.1;
    cfg.faults.spike_prob = 0.05;
    cfg.reliable.enabled = true;
    NodeId a, b;
    Network net = make_net(cfg, &a, &b);
    for (std::uint64_t i = 0; i < 150; ++i) {
      net.node_as<SinkNode>(a).ping(b, i);
    }
    net.run_until_idle();
    return net.node_as<SinkNode>(b).received;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Faults, StragglerActivatesOnlyOnItsSchedule) {
  NetworkConfig cfg;
  cfg.faults.stragglers.push_back({1, 4, 0, 1000});
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  for (int i = 0; i < 40; ++i) net.step();
  // The healthy node ran every round; the straggler every 4th.
  EXPECT_EQ(net.node_as<SinkNode>(a).activations, 40u);
  EXPECT_EQ(net.node_as<SinkNode>(b).activations, 10u);
  // Deliveries are unaffected — only the node's own processing lags.
  net.node_as<SinkNode>(a).ping(b, 7);
  net.step();
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{7}));
}

TEST(Faults, LinkInflationDelaysOnlyItsDirection) {
  NetworkConfig cfg;
  cfg.faults.link_inflations.push_back({0, 1, 3, 0, 1000});
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 1);  // inflated: 1 + 3 rounds
  net.node_as<SinkNode>(b).ping(a, 2);  // reverse direction: on time
  net.step();
  EXPECT_EQ(net.node_as<SinkNode>(a).received,
            (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  net.step();
  net.step();
  EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  net.step();
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{1}));
}

TEST(Faults, LinkInflationEntriesStack) {
  NetworkConfig cfg;
  cfg.faults.link_inflations.push_back({0, 1, 2, 0, 1000});
  cfg.faults.link_inflations.push_back({0, 1, 1, 0, 1000});
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.node_as<SinkNode>(a).ping(b, 9);  // 1 + (2 + 1) rounds
  for (int i = 0; i < 3; ++i) {
    net.step();
    EXPECT_TRUE(net.node_as<SinkNode>(b).received.empty());
  }
  net.step();
  EXPECT_EQ(net.node_as<SinkNode>(b).received,
            (std::vector<std::uint64_t>{9}));
}

TEST(Faults, FlowControlWindowParksAndReleasesSends) {
  NetworkConfig cfg;
  cfg.seed = 24;
  cfg.reliable.enabled = true;
  cfg.reliable.max_in_flight = 4;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.tracer().enable();
  for (std::uint64_t i = 0; i < 100; ++i) net.node_as<SinkNode>(a).ping(b, i);
  // 4 sends filled the window; the other 96 are parked, not dropped.
  EXPECT_EQ(net.reliable().staged(), 96u);
  EXPECT_EQ(net.reliable().staged_on(a, b), 96u);
  EXPECT_EQ(net.reliable().in_flight_on(a, b), 4u);
  EXPECT_FALSE(net.idle()) << "staged sends must block quiescence";

  net.run_until_idle();
  auto got = sorted(net.node_as<SinkNode>(b).received);
  ASSERT_EQ(got.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(net.reliable().staged(), 0u);
  EXPECT_EQ(net.reliable().unacked(), 0u);
  EXPECT_EQ(net.metrics().window_stalls(), 96u);
  const trace::TraceSummary s = trace::summarize(net.take_trace());
  EXPECT_EQ(s.stalls, 96u);
  for (const auto& act : s.actions) {
    if (act.action == "chaos.ping") {
      EXPECT_EQ(act.messages, 100u)
          << "every parked send must still be delivered exactly once";
    }
  }
}

TEST(Faults, FlowControlSurvivesLossAndStaysExactlyOnce) {
  NetworkConfig cfg;
  cfg.seed = 25;
  cfg.faults.drop_prob = 0.2;
  cfg.reliable.enabled = true;
  cfg.reliable.max_in_flight = 2;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  for (std::uint64_t i = 0; i < 150; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  auto got = sorted(net.node_as<SinkNode>(b).received);
  ASSERT_EQ(got.size(), 150u);
  for (std::uint64_t i = 0; i < 150; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(net.metrics().window_stalls(), 0u);
  EXPECT_GT(net.metrics().retransmitted(), 0u);
  EXPECT_EQ(net.reliable().staged(), 0u);
  EXPECT_EQ(net.reliable().unacked(), 0u);
}

TEST(Faults, FlowControlRequiresTheReliableTransport) {
  NetworkConfig cfg;
  cfg.reliable.max_in_flight = 4;  // without reliable.enabled
  EXPECT_THROW((Network(cfg)), CheckFailure);
}

TEST(Faults, StallReportShowsFlowControlWindows) {
  NetworkConfig cfg;
  cfg.seed = 26;
  cfg.reliable.enabled = true;
  cfg.reliable.max_in_flight = 2;
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.crash_node(b);  // crash-stop: the window never reopens
  for (std::uint64_t i = 0; i < 10; ++i) net.node_as<SinkNode>(a).ping(b, i);
  try {
    net.run_until_idle(200);
    FAIL() << "expected the deadlock detector to fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("flow control (max_in_flight=2)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("in_flight=2/2"), std::string::npos) << what;
    EXPECT_NE(what.find("staged=8"), std::string::npos) << what;
    EXPECT_NE(what.find("(dest crashed)"), std::string::npos) << what;
  }
}

TEST(Faults, MaxPendingRoundsMustExceedTheDeliveryHorizon) {
  NetworkConfig cfg;
  cfg.mode = DeliveryMode::kAsynchronous;
  cfg.max_delay = 16;
  cfg.max_pending_rounds = 8;
  EXPECT_THROW((Network(cfg)), CheckFailure);
}

TEST(Faults, MaxPendingRoundsTripsOnRunawayDelayWithDiagnostics) {
  NetworkConfig cfg;
  cfg.seed = 27;
  cfg.max_pending_rounds = 50;
  cfg.faults.link_inflations.push_back({0, 1, 100, 0, 1000});
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  try {
    net.node_as<SinkNode>(a).ping(b, 1);
    net.run_until_idle();
    FAIL() << "expected max_pending_rounds to trip";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("max_pending_rounds"),
              std::string::npos)
        << e.what();
  }
}

TEST(Faults, ScheduleOnlyOverloadKnobsKeepTracesByteIdentical) {
  // Stragglers and link inflation are pure schedule lookups; arming them
  // with never-active windows makes the fault path run on every send but
  // must not move a single rng draw or trace byte.
  auto run = [](bool armed) {
    NetworkConfig cfg;
    cfg.mode = DeliveryMode::kAsynchronous;
    cfg.max_delay = 8;
    cfg.seed = 31;
    if (armed) {
      cfg.faults.stragglers.push_back({1, 2, 0, 0});
      cfg.faults.link_inflations.push_back({0, 1, 7, 0, 0});
    }
    NodeId a, b;
    Network net = make_net(cfg, &a, &b);
    net.tracer().enable();
    for (std::uint64_t i = 0; i < 200; ++i) {
      net.node_as<SinkNode>(a).ping(b, i);
    }
    net.run_until_idle();
    return trace::to_text(net.take_trace());
  };
  const std::string base = run(false);
  EXPECT_TRUE(run(true) == base)
      << "armed-but-idle overload schedules perturbed the trace";
}

TEST(Faults, TraceRecordsDropDuplicateCrashRestart) {
  NetworkConfig cfg;
  cfg.seed = 23;
  cfg.faults.drop_prob = 0.3;
  cfg.faults.duplicate_prob = 0.3;
  cfg.faults.crashes.push_back({1, 30, 35});
  NodeId a, b;
  Network net = make_net(cfg, &a, &b);
  net.tracer().enable();
  for (std::uint64_t i = 0; i < 100; ++i) net.node_as<SinkNode>(a).ping(b, i);
  net.run_until_idle();
  const trace::TraceSummary s = trace::summarize(net.take_trace());
  EXPECT_GT(s.drops, 0u);
  EXPECT_GT(s.duplicates, 0u);
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.restarts, 1u);
  EXPECT_EQ(s.sends, 100u);
  EXPECT_EQ(s.deliveries + s.drops, 100u + s.duplicates);
}

}  // namespace
}  // namespace sks::sim
