// Replica-digest verification and the scrub pass: silent mirror
// corruption (a bit flip in replicated state that no channel check can
// see) is detected with probability 1 by the state digests, surfaced in
// the metrics/trace, and repaired from the digest quorum. Covered here:
//
//  * digest algebra — owner-side state_digest and holder-side digest_of
//    agree on faithful state, ignore cell order, and catch single-bit
//    changes;
//  * the apply path — a delta landing on a silently-diverged mirror is
//    refused (the committed mirror keeps its last state) and counted;
//  * the scrub pass — every injected mirror bit flip is detected and
//    repaired from quorum, missing mirrors are reinstalled, a healthy
//    cluster scrubs clean, and an owner outvoted by its own mirrors is
//    surfaced without rewriting live state.
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "recovery/recovery.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/summary.hpp"

namespace sks {
namespace {

skeap::SkeapSystem::Options scrub_opts(std::uint64_t seed,
                                       std::uint32_t scrub_every) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 3;
  opts.seed = seed;
  opts.reliable.enabled = true;
  opts.recovery.enabled = true;
  opts.recovery.replication = 2;
  opts.recovery.scrub_every = scrub_every;
  return opts;
}

/// Two epochs of inserts/deletes so every node owns some durable state
/// and every mirror holds a nonempty copy of it.
void populate(skeap::SkeapSystem& sys) {
  for (NodeId round = 0; round < 2; ++round) {
    for (NodeId v = 0; v < 8; ++v) {
      sys.insert(v, 1 + (v + round) % 3);
      if (round > 0 && v % 2 == 0) sys.delete_min(v);
    }
    sys.run_batch();
  }
}

// ---- Digest algebra -------------------------------------------------------

TEST(StateDigest, AgreesAcrossOwnerAndHolderAndIgnoresCellOrder) {
  std::vector<recovery::DeltaEntry> entries;
  recovery::DeltaEntry a;
  a.space = 0;
  a.key = 42;
  a.elems = {Element{1, 10}, Element{2, 20}};
  recovery::DeltaEntry b;
  b.space = 1;
  b.key = 7;
  b.elems = {Element{3, 30}};
  entries = {a, b};
  const std::vector<std::uint64_t> blob = {0xfeedULL, 0xbeefULL};

  const std::uint64_t d1 = recovery::state_digest(entries, blob, true);
  entries = {b, a};  // cell order must not matter (map vs scan iteration)
  EXPECT_EQ(recovery::state_digest(entries, blob, true), d1);

  recovery::Mirror m;
  m.entries[{a.space, a.key}] = a.elems;
  m.entries[{b.space, b.key}] = b.elems;
  m.anchor_blob = blob;
  m.has_anchor = true;
  EXPECT_EQ(recovery::digest_of(m), d1);

  // Empty cells are skipped on both sides: an owner-side deletion entry
  // digests like the holder-side erasure it causes.
  recovery::DeltaEntry tomb;
  tomb.space = 0;
  tomb.key = 99;
  entries = {b, a, tomb};
  EXPECT_EQ(recovery::state_digest(entries, blob, true), d1);
}

TEST(StateDigest, SingleBitChangesAreVisible) {
  recovery::Mirror m;
  m.entries[{0, 5}] = {Element{4, 100}, Element{4, 101}};
  const std::uint64_t base = recovery::digest_of(m);

  recovery::Mirror flipped = m;
  flipped.entries[{0, 5}][0].id ^= 1;
  EXPECT_NE(recovery::digest_of(flipped), base);

  flipped = m;
  flipped.entries[{0, 5}][1].prio ^= 1;
  EXPECT_NE(recovery::digest_of(flipped), base);

  flipped = m;
  flipped.has_anchor = true;
  EXPECT_NE(recovery::digest_of(flipped), base);

  // Order within one cell is part of the state (deterministic promotion).
  flipped = m;
  std::swap(flipped.entries[{0, 5}][0], flipped.entries[{0, 5}][1]);
  EXPECT_NE(recovery::digest_of(flipped), base);
}

// ---- Scrub pass -----------------------------------------------------------

TEST(Scrub, HealthyClusterScrubsClean) {
  skeap::SkeapSystem sys(scrub_opts(501, /*scrub_every=*/0));
  populate(sys);
  const std::uint64_t before = sys.net().metrics().scrubs();
  sys.cluster().scrub_mirrors();
  EXPECT_GT(sys.net().metrics().scrubs(), before);
  EXPECT_EQ(sys.net().metrics().digest_mismatches(), 0u);
  EXPECT_EQ(sys.net().metrics().digest_repairs(), 0u);
}

TEST(Scrub, DefaultCadenceRunsEveryEpochWithoutExtraTraffic) {
  // scrub_every = 1 is the default: the pass is coordinator-side and
  // out-of-band, so it must not add messages or rounds to the epoch.
  skeap::SkeapSystem::Options opts = scrub_opts(502, /*scrub_every=*/1);
  skeap::SkeapSystem sys(opts);
  sys.net().tracer().enable();
  populate(sys);
  EXPECT_GT(sys.net().metrics().scrubs(), 0u);
  EXPECT_EQ(sys.net().metrics().digest_mismatches(), 0u);
  const trace::TraceSummary s = trace::summarize(sys.net().take_trace());
  EXPECT_GT(s.scrubs, 0u);
  EXPECT_EQ(s.digest_mismatches, 0u);
}

TEST(Scrub, EveryInjectedBitFlipIsDetectedAndRepaired) {
  skeap::SkeapSystem sys(scrub_opts(503, /*scrub_every=*/0));
  populate(sys);

  // Flip one bit in one replicated element of every owner that has a
  // nonempty mirror — 100% of these corruptions must be detected.
  std::vector<std::pair<NodeId, NodeId>> corrupted;  // (owner, holder)
  std::map<NodeId, std::uint64_t> healthy_digest;
  for (NodeId v : sys.active_nodes()) {
    const auto targets = sys.node(v).recovery().replica_targets();
    ASSERT_EQ(targets.size(), 2u);
    recovery::Mirror m = sys.node(targets[0]).recovery().mirror_of(v);
    if (m.entries.empty()) continue;
    healthy_digest[v] = recovery::digest_of(m);
    m.entries.begin()->second.front().id ^= 1;  // the silent bit flip
    EXPECT_NE(recovery::digest_of(m), healthy_digest[v]);
    sys.node(targets[0]).recovery().install_mirror(v, std::move(m));
    corrupted.emplace_back(v, targets[0]);
  }
  ASSERT_GT(corrupted.size(), 0u) << "populate() left no replicated state";

  const std::uint64_t mismatches0 = sys.net().metrics().digest_mismatches();
  const std::uint64_t repairs0 = sys.net().metrics().digest_repairs();
  sys.cluster().scrub_mirrors();
  EXPECT_EQ(sys.net().metrics().digest_mismatches() - mismatches0,
            corrupted.size())
      << "every flipped mirror must be detected";
  EXPECT_EQ(sys.net().metrics().digest_repairs() - repairs0,
            corrupted.size());
  for (const auto& [v, t] : corrupted) {
    EXPECT_EQ(recovery::digest_of(sys.node(t).recovery().mirror_of(v)),
              healthy_digest[v])
        << "mirror of v" << v << " at v" << t << " was not repaired";
  }
  // A second pass over the repaired cluster is clean.
  const std::uint64_t mismatches1 = sys.net().metrics().digest_mismatches();
  sys.cluster().scrub_mirrors();
  EXPECT_EQ(sys.net().metrics().digest_mismatches(), mismatches1);
}

TEST(Scrub, MissingMirrorIsReinstalledFromQuorum) {
  skeap::SkeapSystem sys(scrub_opts(504, /*scrub_every=*/0));
  populate(sys);
  const NodeId owner = *sys.active_nodes().begin();
  const auto targets = sys.node(owner).recovery().replica_targets();
  ASSERT_EQ(targets.size(), 2u);
  const std::uint64_t healthy =
      recovery::digest_of(sys.node(targets[1]).recovery().mirror_of(owner));
  sys.node(targets[0]).recovery().drop_mirror(owner);
  ASSERT_FALSE(sys.node(targets[0]).recovery().has_mirror(owner));

  sys.cluster().scrub_mirrors();
  ASSERT_TRUE(sys.node(targets[0]).recovery().has_mirror(owner));
  EXPECT_EQ(
      recovery::digest_of(sys.node(targets[0]).recovery().mirror_of(owner)),
      healthy);
  EXPECT_GT(sys.net().metrics().digest_repairs(), 0u);
}

TEST(Scrub, OutvotedOwnerIsSurfacedButNeverRewritten) {
  // Both mirrors of one owner carry the same corrupted copy: the quorum
  // (2 of 3) is the corruption. The owner's live state cannot be
  // rewritten out-of-band, so the scrub must surface the mismatch and
  // leave the (agreeing) mirrors alone.
  skeap::SkeapSystem sys(scrub_opts(505, /*scrub_every=*/0));
  populate(sys);
  NodeId owner = kNoNode;
  std::vector<NodeId> targets;
  for (NodeId v : sys.active_nodes()) {
    targets = sys.node(v).recovery().replica_targets();
    if (!sys.node(targets[0]).recovery().mirror_of(v).entries.empty()) {
      owner = v;
      break;
    }
  }
  ASSERT_NE(owner, kNoNode);
  recovery::Mirror bad = sys.node(targets[0]).recovery().mirror_of(owner);
  bad.entries.begin()->second.front().prio ^= 1;
  const std::uint64_t bad_digest = recovery::digest_of(bad);
  for (NodeId t : targets) {
    sys.node(t).recovery().install_mirror(owner, bad);
  }

  const std::uint64_t repairs0 = sys.net().metrics().digest_repairs();
  sys.cluster().scrub_mirrors();
  EXPECT_GT(sys.net().metrics().digest_mismatches(), 0u)
      << "the outvoted owner must be surfaced";
  EXPECT_EQ(sys.net().metrics().digest_repairs(), repairs0)
      << "nothing may be rewritten when the mirrors agree with each other";
  for (NodeId t : targets) {
    EXPECT_EQ(
        recovery::digest_of(sys.node(t).recovery().mirror_of(owner)),
        bad_digest);
  }
}

// ---- Apply path -----------------------------------------------------------

TEST(Scrub, ApplyRefusesDeltasOnASilentlyDivergedMirror) {
  // Corrupt a committed mirror between epochs (scrub disabled, so only
  // the apply-path audit can see it): the next epoch's delta lands on
  // the diverged base, the re-derived digest disagrees with the owner's,
  // and the holder refuses to stage — the corruption never propagates
  // into a "fresh" commit, and the scrub pass later repairs it.
  skeap::SkeapSystem sys(scrub_opts(506, /*scrub_every=*/0));
  populate(sys);

  // A non-anchor owner: its deltas carry has_anchor = false, so a bogus
  // word appended to the mirror's anchor blob survives every apply.
  NodeId owner = kNoNode;
  for (NodeId v : sys.active_nodes()) {
    if (v != sys.anchor()) {
      owner = v;
      break;
    }
  }
  ASSERT_NE(owner, kNoNode);
  const auto targets = sys.node(owner).recovery().replica_targets();
  recovery::Mirror m = sys.node(targets[0]).recovery().mirror_of(owner);
  m.anchor_blob.push_back(0xbad5eedULL);
  sys.node(targets[0]).recovery().install_mirror(owner, std::move(m));

  const std::uint64_t mismatches0 = sys.net().metrics().digest_mismatches();
  for (NodeId v : sys.active_nodes()) sys.insert(v, 1 + v % 3);
  sys.run_batch();
  EXPECT_GT(sys.net().metrics().digest_mismatches(), mismatches0)
      << "the apply-path digest audit must fire on the diverged mirror";

  // Repair from quorum, then a clean epoch applies without mismatches.
  sys.cluster().scrub_mirrors();
  EXPECT_GT(sys.net().metrics().digest_repairs(), 0u);
  const std::uint64_t mismatches1 = sys.net().metrics().digest_mismatches();
  for (NodeId v : sys.active_nodes()) sys.insert(v, 1 + (v + 1) % 3);
  sys.run_batch();
  EXPECT_EQ(sys.net().metrics().digest_mismatches(), mismatches1)
      << "a repaired mirror must apply the next delta cleanly";
}

}  // namespace
}  // namespace sks
