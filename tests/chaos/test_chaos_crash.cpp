// Crash faults against a live Skeap deployment: nodes crashing and
// restarting mid-epoch, epoch starts deferred until a crashed node comes
// back, crash-stop surfacing as a quiescence failure that a restart
// repairs, and crashes interleaved with churn (join/leave) — in every
// case the heap loses and duplicates nothing and the anchor role stays
// consistent.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

namespace sks::skeap {
namespace {

SkeapSystem::Options chaos_opts(std::uint64_t seed) {
  SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 2;
  opts.seed = seed;
  opts.reliable.enabled = true;
  return opts;
}

NodeId pick_non_anchor(SkeapSystem& sys) {
  for (NodeId v : sys.active_nodes()) {
    if (v != sys.anchor()) return v;
  }
  ADD_FAILURE() << "no non-anchor node";
  return kNoNode;
}

TEST(ChaosCrash, CrashRestartMidBatchConverges) {
  SkeapSystem sys(chaos_opts(41));
  const NodeId victim = pick_non_anchor(sys);
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  // Down for a window that starts inside the batch: the transport
  // bridges the messages it missed once it restarts.
  const std::uint64_t r = sys.net().round();
  sys.net().schedule_crash({victim, r + 3, r + 15});
  const std::uint64_t rounds = sys.run_batch();
  EXPECT_GE(rounds, 15u) << "the batch must outlast the outage";
  EXPECT_FALSE(sys.net().is_crashed(victim));
  EXPECT_EQ(sys.anchor(), sys.cluster().anchor());

  // Every element is still retrievable exactly once.
  std::vector<Element> got;
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  sys.run_batch();
  EXPECT_EQ(got.size(), 8u);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ChaosCrash, EpochStartIsDeferredUntilRestart) {
  SkeapSystem sys(chaos_opts(42));
  const NodeId victim = pick_non_anchor(sys);
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  // Down *before* the batch starts; schedule_crash installs the restart
  // (the crash transition is a no-op on the already-crashed node). The
  // cluster applies the missed start_batch via the restart hook — the
  // aggregation tree needs every member's contribution to complete.
  sys.net().crash_node(victim);
  const std::uint64_t r = sys.net().round();
  sys.net().schedule_crash({victim, r + 1, r + 10});
  sys.run_batch();
  EXPECT_FALSE(sys.net().is_crashed(victim));

  // The victim's inserts made it into the heap: all 8 elements come out.
  std::vector<Element> got;
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
    });
  }
  sys.run_batch();
  EXPECT_EQ(got.size(), 8u);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ChaosCrash, CrashStopStallsBatchAndRestartRepairsIt) {
  SkeapSystem sys(chaos_opts(43));
  const NodeId victim = pick_non_anchor(sys);
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  sys.cluster().start_all([](SkeapNode& n) { n.start_batch(); });
  sys.net().step();  // let the batch take off
  sys.net().step();
  sys.net().crash_node(victim);
  // Crash-stop: unacked records against the dead node keep the network
  // non-idle, so the deadlock detector fires with a report blaming it.
  try {
    sys.net().run_until_idle(600);
    FAIL() << "expected the batch to stall on the crashed node";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos)
        << e.what();
  }
  // Repair: bring the node back; retransmissions finish the batch.
  sys.net().restart_node(victim);
  sys.net().run_until_idle();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ChaosCrash, CrashesInterleavedWithChurn) {
  SkeapSystem sys(chaos_opts(44));
  for (NodeId v = 0; v < 8; ++v) sys.insert(v, 1 + v % 2);
  sys.run_batch();

  // Join a node, then crash-restart a different (non-anchor) veteran
  // during the next batch.
  const NodeId newbie = sys.join_node();
  NodeId victim = kNoNode;
  for (NodeId v : sys.active_nodes()) {
    if (v != sys.anchor() && v != newbie) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode);
  sys.insert(newbie, 1);
  const std::uint64_t r = sys.net().round();
  sys.net().schedule_crash({victim, r + 2, r + 12});
  sys.run_batch();
  EXPECT_FALSE(sys.net().is_crashed(victim));

  // The restarted node can leave cleanly afterwards (its state is
  // intact, so the membership handover has everything it needs).
  sys.leave_node(victim);
  EXPECT_EQ(sys.active_nodes().size(), 8u);

  std::vector<Element> got;
  std::size_t bottoms = 0;
  for (NodeId v : sys.active_nodes()) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      if (x) {
        got.push_back(*x);
      } else {
        ++bottoms;
      }
    });
  }
  sys.run_batch();
  EXPECT_EQ(got.size() + bottoms, 8u);
  EXPECT_EQ(got.size(), 8u) << "9 elements live, 8 deleters: no bottoms";
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace sks::skeap
