// Crash recovery under crash-stop faults: for each protocol (Skeap, Seap,
// KSelect) a node — including the anchor host — crash-stops mid-epoch at
// several offsets and seeds, and the system detects the death, fences the
// victim, promotes its replica, repairs the overlay and completes the
// epoch with semantics intact:
//
//   * no element whose insert was acknowledged (= its epoch committed) is
//     lost or duplicated — the HistoryOracle replays the client-visible
//     history and the core trace checkers audit the node-side records;
//   * the victim's operations from the epoch that was rolled back vanish
//     *unacknowledged* (their callbacks never fire) — that is the
//     recovery contract, and the oracle never sees them;
//   * a transient outage shorter than the declare timeout causes
//     suspicion and reintegration, never a declaration or data loss.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/summary.hpp"

#include "../common/history_oracle.hpp"

namespace sks {
namespace {

using test::HistoryOracle;

// Crash offsets (rounds after the epoch start) per case; three per
// protocol so early, mid and late mid-batch crashes are all exercised.
constexpr std::uint64_t kCrashOffsets[] = {2, 6, 12};

// Three base seeds; CI shifts the set per matrix leg via SKS_CHAOS_SEED.
std::vector<std::uint64_t> recovery_seeds() {
  const char* env = std::getenv("SKS_CHAOS_SEED");
  const std::uint64_t offset =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
  return {11 + offset, 22 + offset, 33 + offset};
}

template <class Active>
NodeId pick_victim(const Active& active, NodeId anchor, bool crash_anchor) {
  if (crash_anchor) return anchor;
  for (NodeId v : active) {
    if (v != anchor) return v;
  }
  return kNoNode;
}

// ---- Skeap ---------------------------------------------------------------

skeap::SkeapSystem::Options skeap_recovery_opts(std::uint64_t seed) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 3;
  opts.seed = seed;
  opts.reliable.enabled = true;
  opts.recovery.enabled = true;
  opts.recovery.replication = 2;
  return opts;
}

void run_skeap_case(std::uint64_t seed, std::uint64_t crash_offset,
                    bool crash_anchor) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " offset="
                                    << crash_offset << " anchor="
                                    << crash_anchor);
  skeap::SkeapSystem sys(skeap_recovery_opts(seed));
  HistoryOracle oracle(HistoryOracle::Mode::kPriority);
  std::vector<std::pair<NodeId, Element>> pending;
  // An insert is acknowledged iff its epoch committed on the issuing
  // node, i.e. the node is still an active member afterwards.
  auto ack = [&](std::uint64_t epoch) {
    for (auto& [v, e] : pending) {
      if (sys.active_nodes().count(v)) oracle.note_insert(e, epoch);
    }
    pending.clear();
  };

  // Epoch 0: fault-free prepopulation — these commits are what the crash
  // must not lose.
  std::uint64_t epoch = sys.cluster().epochs_started();
  for (NodeId v = 0; v < 8; ++v) {
    pending.emplace_back(v, sys.insert(v, 1 + v % 3));
    pending.emplace_back(v, sys.insert(v, 1 + (v + 1) % 3));
  }
  sys.run_batch();
  ack(epoch);

  // Epoch 1: mixed inserts + deletes on every node; the victim
  // crash-stops mid-batch.
  const NodeId victim =
      pick_victim(sys.active_nodes(), sys.anchor(), crash_anchor);
  ASSERT_NE(victim, kNoNode);
  epoch = sys.cluster().epochs_started();
  for (NodeId v : sys.active_nodes()) {
    pending.emplace_back(v, sys.insert(v, 1 + (v + 2) % 3));
    sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
      oracle.note_delete_result(epoch, x);
    });
  }
  sys.net().schedule_crash(
      {victim, sys.net().round() + crash_offset, /*restart=*/0});
  sys.run_batch();
  ack(epoch);

  ASSERT_EQ(sys.active_nodes().size(), 7u);
  EXPECT_EQ(sys.active_nodes().count(victim), 0u);
  ASSERT_EQ(sys.cluster().recovery_log().size(), 1u);
  EXPECT_EQ(sys.cluster().recovery_log()[0].victim, victim);
  if (crash_anchor) {
    EXPECT_NE(sys.anchor(), victim) << "the anchor role must have moved";
    EXPECT_TRUE(sys.cluster().anchor_node().hosts_anchor());
  }

  // Drain: every acknowledged element comes out exactly once, most
  // prioritized first, with no ⊥ while elements remain.
  for (int guard = 0; oracle.live_after_replay() > 0 && guard < 8; ++guard) {
    epoch = sys.cluster().epochs_started();
    std::size_t want = oracle.live_after_replay();
    for (NodeId v : sys.active_nodes()) {
      if (want == 0) break;
      --want;
      sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
        oracle.note_delete_result(epoch, x);
      });
    }
    sys.run_batch();
  }
  ASSERT_EQ(oracle.live_after_replay(), 0u)
      << "acknowledged elements remained undeliverable after the drain";
  const auto verdict = oracle.check();
  EXPECT_TRUE(verdict.ok) << verdict.error;
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(RecoverySkeap, CrashStopMidBatchIsLossless) {
  for (const std::uint64_t seed : recovery_seeds()) {
    for (const std::uint64_t offset : kCrashOffsets) {
      run_skeap_case(seed, offset, /*crash_anchor=*/false);
    }
  }
}

TEST(RecoverySkeap, AnchorCrashPromotesReplicaAndRepairsIntervals) {
  for (const std::uint64_t seed : recovery_seeds()) {
    run_skeap_case(seed, /*crash_offset=*/6, /*crash_anchor=*/true);
  }
}

// ---- Seap ----------------------------------------------------------------

seap::SeapSystem::Options seap_recovery_opts(std::uint64_t seed) {
  seap::SeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.seed = seed;
  opts.reliable.enabled = true;
  opts.recovery.enabled = true;
  opts.recovery.replication = 2;
  return opts;
}

void run_seap_case(std::uint64_t seed, std::uint64_t crash_offset,
                   bool crash_anchor) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " offset="
                                    << crash_offset << " anchor="
                                    << crash_anchor);
  seap::SeapSystem sys(seap_recovery_opts(seed));
  HistoryOracle oracle(HistoryOracle::Mode::kExact);
  std::vector<std::pair<NodeId, Element>> pending;
  auto ack = [&](std::uint64_t epoch) {
    for (auto& [v, e] : pending) {
      if (sys.active_nodes().count(v)) oracle.note_insert(e, epoch);
    }
    pending.clear();
  };

  // Cycle 0: prepopulate with arbitrary priorities.
  Rng rng(seed ^ 0xabcULL);
  std::uint64_t epoch = sys.cluster().epochs_started();
  for (int i = 0; i < 24; ++i) {
    const NodeId v = static_cast<NodeId>(rng.below(8));
    pending.emplace_back(v, sys.insert(v, rng.range(1, 1u << 20)));
  }
  sys.run_cycle();
  ack(epoch);

  // Cycle 1: inserts + deletes everywhere; the victim crash-stops.
  const NodeId victim =
      pick_victim(sys.active_nodes(), sys.anchor(), crash_anchor);
  ASSERT_NE(victim, kNoNode);
  epoch = sys.cluster().epochs_started();
  for (NodeId v : sys.active_nodes()) {
    pending.emplace_back(v, sys.insert(v, rng.range(1, 1u << 20)));
    sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
      oracle.note_delete_result(epoch, x);
    });
  }
  sys.net().schedule_crash(
      {victim, sys.net().round() + crash_offset, /*restart=*/0});
  sys.run_cycle();
  ack(epoch);

  ASSERT_EQ(sys.active_nodes().size(), 7u);
  ASSERT_EQ(sys.cluster().recovery_log().size(), 1u);
  EXPECT_EQ(sys.cluster().recovery_log()[0].victim, victim);
  if (crash_anchor) {
    EXPECT_NE(sys.anchor(), victim);
    EXPECT_TRUE(sys.cluster().anchor_node().hosts_anchor());
  }

  // Drain: Seap's cycles must deliver the exact globally smallest
  // elements among everything acknowledged.
  for (int guard = 0; oracle.live_after_replay() > 0 && guard < 10; ++guard) {
    epoch = sys.cluster().epochs_started();
    std::size_t want = oracle.live_after_replay();
    for (NodeId v : sys.active_nodes()) {
      if (want == 0) break;
      --want;
      sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
        oracle.note_delete_result(epoch, x);
      });
    }
    sys.run_cycle();
  }
  ASSERT_EQ(oracle.live_after_replay(), 0u)
      << "acknowledged elements remained undeliverable after the drain";
  const auto verdict = oracle.check();
  EXPECT_TRUE(verdict.ok) << verdict.error;
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(RecoverySeap, CrashStopMidCycleIsLossless) {
  for (const std::uint64_t seed : recovery_seeds()) {
    for (const std::uint64_t offset : kCrashOffsets) {
      run_seap_case(seed, offset, /*crash_anchor=*/false);
    }
  }
}

TEST(RecoverySeap, AnchorCrashRestoresHeapCounter) {
  for (const std::uint64_t seed : recovery_seeds()) {
    run_seap_case(seed, /*crash_offset=*/6, /*crash_anchor=*/true);
  }
}

// ---- KSelect -------------------------------------------------------------

void run_kselect_case(std::uint64_t seed, std::uint64_t crash_offset,
                      bool crash_anchor) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " offset="
                                    << crash_offset << " anchor="
                                    << crash_anchor);
  kselect::KSelectSystem::Options opts;
  opts.num_nodes = 16;
  opts.seed = seed;
  opts.reliable.enabled = true;
  opts.recovery.enabled = true;
  opts.recovery.replication = 2;
  kselect::KSelectSystem sys(opts);

  Rng rng(seed ^ 0x515ULL);
  std::vector<kselect::CandidateKey> elements;
  for (std::uint64_t i = 0; i < 200; ++i) {
    elements.push_back(kselect::CandidateKey{rng.range(1, 1u << 16), i + 1});
  }
  sys.seed_elements(elements);
  std::sort(elements.begin(), elements.end());

  const NodeId victim = pick_victim(sys.cluster().active_nodes(),
                                    sys.cluster().anchor(), crash_anchor);
  ASSERT_NE(victim, kNoNode);
  sys.net().schedule_crash(
      {victim, sys.net().round() + crash_offset, /*restart=*/0});

  // The selection ranges over *all* 200 elements: the victim's slice is
  // promoted from its mirror, so the k-th smallest is unchanged.
  const auto out = sys.select(57);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, elements[56]);

  // A second selection exercises the repaired overlay end to end (and
  // flushes the crash if the first selection finished before it landed).
  const auto out2 = sys.select(100);
  ASSERT_TRUE(out2.result.has_value());
  EXPECT_EQ(*out2.result, elements[99]);

  EXPECT_EQ(sys.cluster().recovery_log().size(), 1u);
  EXPECT_EQ(sys.cluster().active_nodes().count(victim), 0u);
}

TEST(RecoveryKSelect, CrashStopMidSelectionRecoversElements) {
  for (const std::uint64_t seed : recovery_seeds()) {
    for (const std::uint64_t offset : kCrashOffsets) {
      run_kselect_case(seed, offset, /*crash_anchor=*/false);
    }
  }
}

TEST(RecoveryKSelect, AnchorCrashRetriesUnderNewAnchor) {
  for (const std::uint64_t seed : recovery_seeds()) {
    run_kselect_case(seed, /*crash_offset=*/6, /*crash_anchor=*/true);
  }
}

// ---- Detector: false suspicion has no side effects ----------------------

TEST(RecoveryDetector, FalseSuspicionReintegratesWithoutDeclaration) {
  for (const std::uint64_t seed : recovery_seeds()) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    skeap::SkeapSystem sys(skeap_recovery_opts(seed));
    sys.net().tracer().enable();
    HistoryOracle oracle(HistoryOracle::Mode::kPriority);

    std::uint64_t epoch = sys.cluster().epochs_started();
    for (NodeId v = 0; v < 8; ++v) {
      oracle.note_insert(sys.insert(v, 1 + v % 3), epoch);
    }
    sys.run_batch();

    // A transient outage longer than the suspect timeout (8 rounds) but
    // healed before the declare timeout (12 more): the victim must be
    // suspected, then reintegrated — never declared, never fenced.
    const NodeId victim =
        pick_victim(sys.active_nodes(), sys.anchor(), false);
    epoch = sys.cluster().epochs_started();
    for (NodeId v : sys.active_nodes()) {
      oracle.note_insert(sys.insert(v, 1 + (v + 1) % 3), epoch);
      sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
        oracle.note_delete_result(epoch, x);
      });
    }
    const std::uint64_t r = sys.net().round();
    sys.net().schedule_crash({victim, r + 2, r + 14});
    sys.run_batch();

    EXPECT_EQ(sys.active_nodes().size(), 8u) << "nobody may be fenced";
    EXPECT_TRUE(sys.cluster().recovery_log().empty());
    EXPECT_FALSE(sys.net().is_crashed(victim));

    const trace::TraceSummary s = trace::summarize(sys.net().take_trace());
    EXPECT_GT(s.suspects, 0u) << "the outage must have raised suspicion";
    EXPECT_EQ(s.declared_dead, 0u);
    EXPECT_GT(s.recoveries, 0u) << "the suspect must have been reintegrated";

    const auto verdict = oracle.check();
    EXPECT_TRUE(verdict.ok) << verdict.error;
    const auto check = core::check_skeap_trace(sys.gather_trace());
    EXPECT_TRUE(check.ok) << check.error;
  }
}

// ---- Replication: incremental deltas equal the full state ---------------

TEST(RecoveryReplication, EpochDeltasKeepMirrorsCurrent) {
  // k = 1 on a fault-free network: after every committed epoch, each
  // node's single mirror holder must hold exactly the owner's durable
  // state — the incremental snapshot-diff deltas may never drift from a
  // full out-of-band reseed.
  skeap::SkeapSystem::Options opts = skeap_recovery_opts(77);
  opts.recovery.replication = 1;
  skeap::SkeapSystem sys(opts);

  for (int round = 0; round < 3; ++round) {
    for (NodeId v = 0; v < 8; ++v) {
      sys.insert(v, 1 + (v + round) % 3);
      if (round > 0 && v % 2 == 0) sys.delete_min(v);
    }
    sys.run_batch();

    for (NodeId v : sys.active_nodes()) {
      auto targets = sys.node(v).recovery().replica_targets();
      ASSERT_EQ(targets.size(), 1u);
      const recovery::Mirror& m =
          sys.node(targets[0]).recovery().mirror_of(v);
      std::map<std::pair<std::uint8_t, Point>, std::vector<Element>> expect;
      for (auto& e : sys.node(v).full_state_entries()) {
        expect[{e.space, e.key}] = std::move(e.elems);
      }
      EXPECT_EQ(m.entries, expect)
          << "mirror of node " << v << " drifted after epoch " << round;
      EXPECT_EQ(m.anchor_blob, sys.node(v).anchor_blob());
    }
  }
}

}  // namespace
}  // namespace sks
