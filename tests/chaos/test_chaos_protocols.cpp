// Chaos tests at the protocol level: Skeap, Seap and KSelect complete
// their batches/cycles/selections over a lossy channel once the reliable
// transport is enabled, with every semantic guarantee intact. Two
// independent auditors run on every case: the HistoryOracle replays the
// client-visible history (acknowledged inserts vs. deleteMin results, per
// epoch — lost, duplicated and phantom elements all surface there), and
// the checkers of core/semantics.hpp audit the node-side op records.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

#include "../common/history_oracle.hpp"

namespace sks {
namespace {

using test::HistoryOracle;

constexpr double kDropRates[] = {0.1, 0.2};

// Three base seeds per test; CI shifts the whole set per matrix leg via
// SKS_CHAOS_SEED so every leg exercises a fresh fault schedule.
std::vector<std::uint64_t> chaos_seeds() {
  const char* env = std::getenv("SKS_CHAOS_SEED");
  const std::uint64_t offset =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
  return {101 + offset, 202 + offset, 303 + offset};
}

TEST(ChaosSkeap, BatchesSurviveMessageLoss) {
  for (const double drop : kDropRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      skeap::SkeapSystem::Options opts;
      opts.num_nodes = 8;
      opts.num_priorities = 3;
      opts.seed = seed;
      opts.faults.drop_prob = drop;
      opts.reliable.enabled = true;
      skeap::SkeapSystem sys(opts);

      HistoryOracle oracle(HistoryOracle::Mode::kPriority);
      for (NodeId v = 0; v < 8; ++v) {
        oracle.note_insert(sys.insert(v, 1 + v % 3), 0);
      }
      sys.run_batch();
      for (NodeId v = 0; v < 8; ++v) {
        oracle.note_insert(sys.insert(v, 1 + (v + 1) % 3), 1);
        if (v % 2 == 0) {
          sys.delete_min(v, [&](std::optional<Element> x) {
            oracle.note_delete_result(1, x);
          });
        }
      }
      sys.run_batch();
      const auto verdict = oracle.check();
      EXPECT_TRUE(verdict.ok)
          << "drop=" << drop << " seed=" << seed << ": " << verdict.error;
      EXPECT_EQ(oracle.live_after_replay(), 12u)
          << "16 acknowledged inserts, 4 deletes: 4 must have matched";
      EXPECT_GT(sys.net().metrics().retransmitted(), 0u)
          << "the loss rate should have forced retransmissions";
      const auto check = core::check_skeap_trace(sys.gather_trace());
      EXPECT_TRUE(check.ok)
          << "drop=" << drop << " seed=" << seed << ": " << check.error;
    }
  }
}

TEST(ChaosSkeap, AsyncLossDuplicatesAndSpikesTogether) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 8;
  opts.num_priorities = 2;
  opts.seed = 77;
  opts.mode = sim::DeliveryMode::kAsynchronous;
  opts.max_delay = 6;
  opts.faults.drop_prob = 0.1;
  opts.faults.duplicate_prob = 0.1;
  opts.faults.spike_prob = 0.05;
  opts.faults.spike_min = 8;
  opts.faults.spike_max = 128;
  opts.reliable.enabled = true;
  opts.reliable.ack_timeout = 16;  // > one async round trip
  skeap::SkeapSystem sys(opts);

  HistoryOracle oracle(HistoryOracle::Mode::kPriority);
  for (NodeId v = 0; v < 8; ++v) {
    oracle.note_insert(sys.insert(v, 1 + v % 2), 0);
  }
  sys.run_batch();
  for (NodeId v = 0; v < 8; ++v) {
    sys.delete_min(v, [&](std::optional<Element> x) {
      oracle.note_delete_result(1, x);
    });
  }
  sys.run_batch();
  const auto verdict = oracle.check();
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_EQ(oracle.live_after_replay(), 0u)
      << "all 8 elements must have been delivered";
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ChaosSeap, CyclesSurviveMessageLoss) {
  for (const double drop : kDropRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      seap::SeapSystem::Options opts;
      opts.num_nodes = 8;
      opts.seed = seed;
      opts.faults.drop_prob = drop;
      opts.reliable.enabled = true;
      seap::SeapSystem sys(opts);

      Rng rng(seed ^ 0xabc);
      HistoryOracle oracle(HistoryOracle::Mode::kExact);
      for (int i = 0; i < 24; ++i) {
        oracle.note_insert(sys.insert(static_cast<NodeId>(rng.below(8)),
                                      rng.range(1, 1u << 20)),
                           0);
      }
      sys.run_cycle();
      for (int i = 0; i < 8; ++i) {
        sys.delete_min(static_cast<NodeId>(i),
                       [&](std::optional<Element> x) {
                         oracle.note_delete_result(1, x);
                       });
      }
      sys.run_cycle();
      // kExact: the 8 deletes must return exactly the 8 smallest elements.
      const auto verdict = oracle.check();
      EXPECT_TRUE(verdict.ok)
          << "drop=" << drop << " seed=" << seed << ": " << verdict.error;
      EXPECT_EQ(oracle.live_after_replay(), 16u)
          << "24 acknowledged inserts, 8 deletes: all must have matched";
      EXPECT_GT(sys.net().metrics().retransmitted(), 0u);
      const auto check = core::check_seap_trace(sys.gather_trace());
      EXPECT_TRUE(check.ok)
          << "drop=" << drop << " seed=" << seed << ": " << check.error;
    }
  }
}

TEST(ChaosKSelect, SelectionSurvivesMessageLoss) {
  for (const double drop : kDropRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      kselect::KSelectSystem::Options opts;
      opts.num_nodes = 16;
      opts.seed = seed;
      opts.faults.drop_prob = drop;
      opts.reliable.enabled = true;
      kselect::KSelectSystem sys(opts);

      Rng rng(seed ^ 0x515);
      std::vector<kselect::CandidateKey> elements;
      for (std::uint64_t i = 0; i < 200; ++i) {
        elements.push_back(
            kselect::CandidateKey{rng.range(1, 1u << 16), i + 1});
      }
      sys.seed_elements(elements);
      const auto out = sys.select(57);
      ASSERT_TRUE(out.result.has_value()) << "drop=" << drop
                                          << " seed=" << seed;
      std::sort(elements.begin(), elements.end());
      EXPECT_EQ(*out.result, elements[56])
          << "drop=" << drop << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace sks
