// Silent-failure hardening, channel level: a corrupting channel (bit
// flips, truncations, garbage frames) in wire mode is a survivable fault
// class, never a crash. Covered here:
//
//  * malformed bytes NEVER propagate a CheckFailure out of Network::step —
//    every integrity rejection is a counted, traced drop (regression for
//    the decode-at-delivery path);
//  * the reliable transport restores exactly-once delivery over the
//    corrupting channel, and zero mutated frames reach a decoder
//    (corrupt_delivered stays 0 — the CI gate's invariant);
//  * a link that corrupts 100% of copies degrades gracefully: the poison
//    budget quarantines the records (surfaced in the stall report) and
//    the retransmit-storm guard + jitter keep the re-send volume bounded;
//  * the protocol chaos matrix — Skeap, Seap, KSelect under corruption,
//    corruption x loss, and corruption x loss x crash — passes the
//    HistoryOracle's exactly-once replay at 1%, 5% and 10% corruption.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"
#include "skeap/skeap_system.hpp"
#include "trace/summary.hpp"

#include "../common/history_oracle.hpp"

namespace sks {
namespace {

using test::HistoryOracle;

constexpr double kCorruptRates[] = {0.01, 0.05, 0.10};

// Three base seeds; CI shifts the set per matrix leg via SKS_CHAOS_SEED.
std::vector<std::uint64_t> chaos_seeds() {
  const char* env = std::getenv("SKS_CHAOS_SEED");
  const std::uint64_t offset =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
  return {101 + offset, 202 + offset, 303 + offset};
}

// ---- Channel mechanics on toy nodes ---------------------------------------

struct Blip final : sim::Action<Blip> {
  static constexpr const char* kActionName = "chaos.blip";
  std::uint64_t value = 0;
  std::uint64_t size_bits() const override { return 32; }

  void encode(wire::WireWriter& w) const override { w.leb(value); }
  static sim::Owned<Blip> decode(wire::WireReader& r) {
    auto p = sim::make_payload<Blip>();
    p->value = r.leb();
    return p;
  }
};

class BlipNode : public sim::DispatchingNode {
 public:
  BlipNode() {
    on<Blip>(
        [this](NodeId, sim::Owned<Blip> p) { received.push_back(p->value); });
  }

  void blip(NodeId to, std::uint64_t v) {
    auto p = sim::make_payload<Blip>();
    p->value = v;
    send(to, std::move(p));
  }

  std::vector<std::uint64_t> received;
};

sim::Network make_net(sim::NetworkConfig cfg, NodeId* a, NodeId* b) {
  cfg.wire = true;  // corruption mutates real frame bytes
  sim::Network net(cfg);
  *a = net.add_node(std::make_unique<BlipNode>());
  *b = net.add_node(std::make_unique<BlipNode>());
  return net;
}

std::vector<std::uint64_t> sorted(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Corruption, RequiresWireMode) {
  sim::NetworkConfig cfg;
  cfg.faults.corrupt_prob = 0.1;  // wire stays at its default (off in CI)
  cfg.wire = false;
  EXPECT_THROW(sim::Network net(cfg), CheckFailure);
}

TEST(Corruption, MutatedCopiesAreDroppedCountedAndTraced) {
  sim::NetworkConfig cfg;
  cfg.seed = 31;
  cfg.faults.corrupt_prob = 0.3;
  NodeId a, b;
  sim::Network net = make_net(cfg, &a, &b);
  net.tracer().enable();
  for (std::uint64_t i = 0; i < 500; ++i) net.node_as<BlipNode>(a).blip(b, i);
  net.run_until_idle();
  const auto& got = net.node_as<BlipNode>(b).received;
  // Every physical copy either survives intact or is rejected whole: the
  // deliveries and the corrupt drops partition the 500 sends exactly.
  EXPECT_LT(got.size(), 500u);
  EXPECT_EQ(got.size() + net.metrics().corrupted(), 500u);
  EXPECT_EQ(net.metrics().current().corrupt_delivered, 0u);
  const trace::TraceSummary s = trace::summarize(net.take_trace());
  EXPECT_EQ(s.corruptions, net.metrics().corrupted());
}

TEST(Corruption, GarbageFramesNeverReachANode) {
  sim::NetworkConfig cfg;
  cfg.seed = 32;
  cfg.faults.garbage_prob = 1.0;  // one garbage frame per send
  NodeId a, b;
  sim::Network net = make_net(cfg, &a, &b);
  for (std::uint64_t i = 0; i < 200; ++i) net.node_as<BlipNode>(a).blip(b, i);
  net.run_until_idle();
  // The carried messages are untouched; every injected garbage frame is
  // rejected by the integrity layer and counted.
  EXPECT_EQ(net.node_as<BlipNode>(b).received.size(), 200u);
  EXPECT_EQ(net.metrics().corrupted(), 200u);
  EXPECT_EQ(net.metrics().current().corrupt_delivered, 0u);
}

// Satellite regression: malformed bytes in wire mode never propagate a
// CheckFailure out of Network::step, under every corruption class at
// once and at a heavy rate.
TEST(Corruption, StepNeverLeaksCheckFailureOnMalformedBytes) {
  for (const std::uint64_t seed : chaos_seeds()) {
    sim::NetworkConfig cfg;
    cfg.seed = seed;
    cfg.faults.corrupt_prob = 0.6;
    cfg.faults.truncate_prob = 0.3;
    cfg.faults.garbage_prob = 0.3;
    cfg.reliable.enabled = true;
    // ~72% of copies get poisoned at these rates; with the default
    // budget of 16 a record quarantines (0.72^16 per record) on some
    // SKS_CHAOS_SEED offsets. This test is about leak-freedom and
    // delivery, not quarantine — give the budget enough headroom that
    // a random channel can't exhaust it (0.72^64 ≈ 7e-10).
    cfg.reliable.max_poison_attempts = 64;
    NodeId a, b;
    sim::Network net = make_net(cfg, &a, &b);
    for (std::uint64_t i = 0; i < 50; ++i) {
      net.node_as<BlipNode>(a).blip(b, i);
    }
    std::uint64_t guard = 0;
    while (!net.idle()) {
      ASSERT_LT(++guard, 100000u) << "seed=" << seed;
      EXPECT_NO_THROW(net.step()) << "seed=" << seed;
    }
    auto got = sorted(net.node_as<BlipNode>(b).received);
    ASSERT_EQ(got.size(), 50u) << "seed=" << seed;
    for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
    EXPECT_GT(net.metrics().corrupted(), 0u);
    EXPECT_EQ(net.metrics().current().corrupt_delivered, 0u);
  }
}

TEST(Corruption, ReliableTransportIsExactlyOnceUnderCorruption) {
  for (const double p : kCorruptRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      sim::NetworkConfig cfg;
      cfg.seed = seed;
      cfg.faults.corrupt_prob = p;
      cfg.reliable.enabled = true;
      NodeId a, b;
      sim::Network net = make_net(cfg, &a, &b);
      for (std::uint64_t i = 0; i < 200; ++i) {
        net.node_as<BlipNode>(a).blip(b, i);
      }
      net.run_until_idle();
      auto got = sorted(net.node_as<BlipNode>(b).received);
      ASSERT_EQ(got.size(), 200u) << "p=" << p << " seed=" << seed;
      for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(got[i], i);
      EXPECT_EQ(net.metrics().current().corrupt_delivered, 0u);
      EXPECT_EQ(net.reliable().unacked(), 0u);
    }
  }
}

// Satellite: a link that corrupts every physical copy. The poison budget
// must quarantine every record (graceful degradation, network quiesces),
// the storm guard + jitter must keep the retransmission volume bounded
// by its per-round quota, and the stall report must surface the
// quarantined records.
TEST(Corruption, FullyCorruptingLinkQuarantinesWithoutAStorm) {
  sim::NetworkConfig cfg;
  cfg.seed = 33;
  cfg.faults.corrupt_prob = 1.0;
  cfg.faults.corrupt_max_flips = 1;  // one flip can never cancel out
  cfg.reliable.enabled = true;
  cfg.reliable.ack_timeout = 2;
  cfg.reliable.max_poison_attempts = 4;
  cfg.reliable.max_channel_retransmits_per_round = 1;
  cfg.reliable.retransmit_jitter = 2;
  NodeId a, b;
  sim::Network net = make_net(cfg, &a, &b);
  constexpr std::uint64_t kSends = 20;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    net.node_as<BlipNode>(a).blip(b, i);
  }
  const std::uint64_t rounds = net.run_until_idle();
  EXPECT_TRUE(net.node_as<BlipNode>(b).received.empty());
  EXPECT_EQ(net.reliable().quarantined(), kSends);
  EXPECT_EQ(net.metrics().quarantined(), kSends);
  // 4 poisoned copies per record: the original + 3 retransmissions.
  EXPECT_EQ(net.metrics().corrupted(), kSends * 4);
  EXPECT_EQ(net.metrics().retransmitted(), kSends * 3);
  // Storm guard: one retransmission per channel per round, hard cap.
  EXPECT_LE(net.metrics().retransmitted(), rounds);
  EXPECT_EQ(net.reliable().unacked(), 0u) << "quarantine must abandon all";
  const std::string report = net.stall_report();
  EXPECT_NE(report.find("quarantined poison record(s): 20"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("chaos.blip"), std::string::npos) << report;
}

// ---- Protocol chaos matrix: corruption x loss x crash ---------------------

TEST(ChaosCorruptionSkeap, BatchesSurviveACorruptingChannel) {
  for (const double rate : kCorruptRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      skeap::SkeapSystem::Options opts;
      opts.num_nodes = 8;
      opts.num_priorities = 3;
      opts.seed = seed;
      opts.wire = true;
      opts.faults.corrupt_prob = rate;
      opts.faults.truncate_prob = rate / 4.0;
      opts.faults.garbage_prob = rate / 4.0;
      opts.reliable.enabled = true;
      skeap::SkeapSystem sys(opts);

      HistoryOracle oracle(HistoryOracle::Mode::kPriority);
      for (NodeId v = 0; v < 8; ++v) {
        oracle.note_insert(sys.insert(v, 1 + v % 3), 0);
      }
      sys.run_batch();
      for (NodeId v = 0; v < 8; ++v) {
        oracle.note_insert(sys.insert(v, 1 + (v + 1) % 3), 1);
        if (v % 2 == 0) {
          sys.delete_min(v, [&](std::optional<Element> x) {
            oracle.note_delete_result(1, x);
          });
        }
      }
      sys.run_batch();
      const auto verdict = oracle.check();
      EXPECT_TRUE(verdict.ok)
          << "rate=" << rate << " seed=" << seed << ": " << verdict.error;
      EXPECT_EQ(oracle.live_after_replay(), 12u);
      EXPECT_EQ(sys.net().metrics().current().corrupt_delivered, 0u)
          << "a mutated frame reached a decoder";
      const auto check = core::check_skeap_trace(sys.gather_trace());
      EXPECT_TRUE(check.ok)
          << "rate=" << rate << " seed=" << seed << ": " << check.error;
    }
  }
}

TEST(ChaosCorruptionSeap, CyclesSurviveACorruptingChannel) {
  for (const double rate : kCorruptRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      seap::SeapSystem::Options opts;
      opts.num_nodes = 8;
      opts.seed = seed;
      opts.wire = true;
      opts.faults.corrupt_prob = rate;
      opts.faults.truncate_prob = rate / 4.0;
      opts.faults.garbage_prob = rate / 4.0;
      opts.reliable.enabled = true;
      seap::SeapSystem sys(opts);

      Rng rng(seed ^ 0xabc);
      HistoryOracle oracle(HistoryOracle::Mode::kExact);
      for (int i = 0; i < 24; ++i) {
        oracle.note_insert(sys.insert(static_cast<NodeId>(rng.below(8)),
                                      rng.range(1, 1u << 20)),
                           0);
      }
      sys.run_cycle();
      for (int i = 0; i < 8; ++i) {
        sys.delete_min(static_cast<NodeId>(i),
                       [&](std::optional<Element> x) {
                         oracle.note_delete_result(1, x);
                       });
      }
      sys.run_cycle();
      const auto verdict = oracle.check();
      EXPECT_TRUE(verdict.ok)
          << "rate=" << rate << " seed=" << seed << ": " << verdict.error;
      EXPECT_EQ(oracle.live_after_replay(), 16u);
      EXPECT_EQ(sys.net().metrics().current().corrupt_delivered, 0u);
      const auto check = core::check_seap_trace(sys.gather_trace());
      EXPECT_TRUE(check.ok)
          << "rate=" << rate << " seed=" << seed << ": " << check.error;
    }
  }
}

TEST(ChaosCorruptionKSelect, SelectionSurvivesACorruptingChannel) {
  for (const double rate : kCorruptRates) {
    for (const std::uint64_t seed : chaos_seeds()) {
      kselect::KSelectSystem::Options opts;
      opts.num_nodes = 16;
      opts.seed = seed;
      opts.wire = true;
      opts.faults.corrupt_prob = rate;
      opts.faults.truncate_prob = rate / 4.0;
      opts.faults.garbage_prob = rate / 4.0;
      opts.reliable.enabled = true;
      kselect::KSelectSystem sys(opts);

      Rng rng(seed ^ 0x515);
      std::vector<kselect::CandidateKey> elements;
      for (std::uint64_t i = 0; i < 200; ++i) {
        elements.push_back(
            kselect::CandidateKey{rng.range(1, 1u << 16), i + 1});
      }
      sys.seed_elements(elements);
      const auto out = sys.select(57);
      ASSERT_TRUE(out.result.has_value())
          << "rate=" << rate << " seed=" << seed;
      std::sort(elements.begin(), elements.end());
      EXPECT_EQ(*out.result, elements[56])
          << "rate=" << rate << " seed=" << seed;
      EXPECT_EQ(sys.net().metrics().current().corrupt_delivered, 0u);
    }
  }
}

// The full fault ladder at once: corruption + loss + a mid-epoch
// crash-stop, with recovery enabled. Exactly-once must survive the
// stack, and the corruption layer must stay invisible to the protocol.
TEST(ChaosCorruptionSkeap, CorruptionLossAndCrashTogether) {
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    skeap::SkeapSystem::Options opts;
    opts.num_nodes = 8;
    opts.num_priorities = 3;
    opts.seed = seed;
    opts.wire = true;
    opts.faults.corrupt_prob = 0.05;
    opts.faults.truncate_prob = 0.01;
    opts.faults.garbage_prob = 0.01;
    opts.faults.drop_prob = 0.05;
    opts.reliable.enabled = true;
    opts.recovery.enabled = true;
    opts.recovery.replication = 2;
    skeap::SkeapSystem sys(opts);

    HistoryOracle oracle(HistoryOracle::Mode::kPriority);
    std::vector<std::pair<NodeId, Element>> pending;
    auto ack = [&](std::uint64_t epoch) {
      for (auto& [v, e] : pending) {
        if (sys.active_nodes().count(v)) oracle.note_insert(e, epoch);
      }
      pending.clear();
    };

    // Epoch 0: prepopulate (commits that the crash must not lose).
    std::uint64_t epoch = sys.cluster().epochs_started();
    for (NodeId v = 0; v < 8; ++v) {
      pending.emplace_back(v, sys.insert(v, 1 + v % 3));
    }
    sys.run_batch();
    ack(epoch);

    // Epoch 1: mixed work; a non-anchor node crash-stops mid-batch while
    // the channel keeps corrupting and dropping.
    NodeId victim = kNoNode;
    for (NodeId v : sys.active_nodes()) {
      if (v != sys.anchor()) {
        victim = v;
        break;
      }
    }
    ASSERT_NE(victim, kNoNode);
    epoch = sys.cluster().epochs_started();
    for (NodeId v : sys.active_nodes()) {
      pending.emplace_back(v, sys.insert(v, 1 + (v + 1) % 3));
      sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
        oracle.note_delete_result(epoch, x);
      });
    }
    sys.net().schedule_crash({victim, sys.net().round() + 6, /*restart=*/0});
    sys.run_batch();
    ack(epoch);

    ASSERT_EQ(sys.active_nodes().size(), 7u);
    EXPECT_EQ(sys.active_nodes().count(victim), 0u);

    // Drain everything acknowledged; exactly-once end to end.
    for (int guard = 0; oracle.live_after_replay() > 0 && guard < 8;
         ++guard) {
      epoch = sys.cluster().epochs_started();
      std::size_t want = oracle.live_after_replay();
      for (NodeId v : sys.active_nodes()) {
        if (want == 0) break;
        --want;
        sys.delete_min(v, [&oracle, epoch](std::optional<Element> x) {
          oracle.note_delete_result(epoch, x);
        });
      }
      sys.run_batch();
    }
    ASSERT_EQ(oracle.live_after_replay(), 0u);
    const auto verdict = oracle.check();
    EXPECT_TRUE(verdict.ok) << verdict.error;
    EXPECT_EQ(sys.net().metrics().current().corrupt_delivered, 0u);
    const auto check = core::check_skeap_trace(sys.gather_trace());
    EXPECT_TRUE(check.ok) << check.error;
  }
}

}  // namespace
}  // namespace sks
