// Overload chaos leg: sustained overload (offered load past the
// admission cap) combined with a straggling node, 10% message loss,
// crash-restart and a tight flow-control window — for Skeap, Seap and
// KSelect. The shed-aware HistoryOracle audits the client-visible
// history (acknowledged inserts minus shed retractions vs. deleteMin
// results) and the core trace checkers audit the node-side records; a
// shed insert leaking back into the heap, a lost acknowledged insert, or
// a duplicated delivery all surface in one of the two.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "kselect/kselect_system.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

#include "../common/history_oracle.hpp"

namespace sks {
namespace {

using test::HistoryOracle;

// Same base seeds and SKS_CHAOS_SEED shift as the other chaos suites, so
// every CI matrix leg exercises a fresh overload schedule.
std::vector<std::uint64_t> overload_seeds() {
  const char* env = std::getenv("SKS_CHAOS_SEED");
  const std::uint64_t offset =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
  return {101 + offset, 202 + offset, 303 + offset};
}

/// Feed a try_insert outcome to the oracle: acknowledged inserts are
/// recorded, an evicted victim is retracted, an outright-rejected insert
/// was never acknowledged and leaves no trace. Returns 1 if anything was
/// shed (either way), for checking the metrics counter.
template <class Outcome>
std::uint64_t note_outcome(HistoryOracle& oracle, const Outcome& out,
                           std::uint64_t epoch) {
  if (out.element.has_value()) {
    oracle.note_insert(*out.element, epoch);
    if (out.shed.has_value()) oracle.note_shed(*out.shed, epoch);
  }
  return out.shed.has_value() ? 1u : 0u;
}

TEST(Overload, SkeapAdmissionShedsWorstPendingInsert) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = 2;
  opts.num_priorities = 3;
  opts.seed = 9;
  opts.max_buffered_ops = 2;
  skeap::SkeapSystem sys(opts);
  HistoryOracle oracle(HistoryOracle::Mode::kPriority);

  const auto a = sys.try_insert(0, 2);
  const auto b = sys.try_insert(0, 1);
  ASSERT_TRUE(a.element.has_value());
  ASSERT_TRUE(b.element.has_value());
  EXPECT_FALSE(a.shed.has_value());
  EXPECT_FALSE(b.shed.has_value());
  oracle.note_insert(*a.element, 0);
  oracle.note_insert(*b.element, 0);

  // At the cap, the worst pending insert is shed. An incoming prio-3 is
  // itself the worst: rejected outright, nothing buffered changes.
  const auto c = sys.try_insert(0, 3);
  EXPECT_FALSE(c.element.has_value());
  ASSERT_TRUE(c.shed.has_value());
  EXPECT_EQ(c.shed->prio, 3u);

  // An incoming prio-1 beats the buffered prio-2: that one is evicted.
  const auto d = sys.try_insert(0, 1);
  ASSERT_TRUE(d.element.has_value());
  ASSERT_TRUE(d.shed.has_value());
  EXPECT_EQ(d.shed->id, a.element->id);
  oracle.note_insert(*d.element, 0);
  oracle.note_shed(*d.shed, 0);

  // Priority ties reject the newest op (the incoming one).
  const auto e = sys.try_insert(0, 1);
  EXPECT_FALSE(e.element.has_value());
  ASSERT_TRUE(e.shed.has_value());
  EXPECT_EQ(e.shed->prio, 1u);

  EXPECT_EQ(sys.net().metrics().sheds(), 3u);

  // Deletes are never shed: they join the buffer even at the cap.
  std::vector<Element> got;
  for (int i = 0; i < 2; ++i) {
    sys.delete_min(0, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
      oracle.note_delete_result(0, x);
    });
  }
  sys.run_batch();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].prio, 1u);
  EXPECT_EQ(got[1].prio, 1u);

  const auto verdict = oracle.check();
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_EQ(oracle.live_after_replay(), 0u);
  const auto check = core::check_skeap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Overload, SeapAdmissionShedsWorstPendingInsert) {
  seap::SeapSystem::Options opts;
  opts.num_nodes = 2;
  opts.seed = 10;
  opts.max_buffered_ops = 2;
  seap::SeapSystem sys(opts);
  HistoryOracle oracle(HistoryOracle::Mode::kExact);

  const auto a = sys.try_insert(0, 100);
  const auto b = sys.try_insert(0, 50);
  ASSERT_TRUE(a.element.has_value());
  ASSERT_TRUE(b.element.has_value());
  oracle.note_insert(*a.element, 0);
  oracle.note_insert(*b.element, 0);

  const auto c = sys.try_insert(0, 300);  // worst: rejected outright
  EXPECT_FALSE(c.element.has_value());
  ASSERT_TRUE(c.shed.has_value());
  EXPECT_EQ(c.shed->prio, 300u);

  const auto d = sys.try_insert(0, 10);  // evicts the buffered 100
  ASSERT_TRUE(d.element.has_value());
  ASSERT_TRUE(d.shed.has_value());
  EXPECT_EQ(d.shed->id, a.element->id);
  oracle.note_insert(*d.element, 0);
  oracle.note_shed(*d.shed, 0);

  EXPECT_EQ(sys.net().metrics().sheds(), 2u);

  std::vector<Element> got;
  for (int i = 0; i < 2; ++i) {
    sys.delete_min(0, [&](std::optional<Element> x) {
      ASSERT_TRUE(x.has_value());
      got.push_back(*x);
      oracle.note_delete_result(0, x);
    });
  }
  sys.run_cycle();
  ASSERT_EQ(got.size(), 2u);
  // kExact: exactly the two surviving elements (which callback slot
  // receives which is a protocol detail, so compare as a multiset).
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0].prio, 10u);
  EXPECT_EQ(got[1].prio, 50u);

  const auto verdict = oracle.check();
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_EQ(oracle.live_after_replay(), 0u);
  const auto check = core::check_seap_trace(sys.gather_trace());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Overload, SkeapSurvivesOverloadStragglersLossAndCrashes) {
  for (const std::uint64_t seed : overload_seeds()) {
    skeap::SkeapSystem::Options opts;
    opts.num_nodes = 8;
    opts.num_priorities = 3;
    opts.seed = seed;
    opts.faults.drop_prob = 0.1;
    opts.faults.stragglers.push_back({2, 3, 0, 100000});
    opts.reliable.enabled = true;
    opts.reliable.max_in_flight = 4;
    opts.max_buffered_ops = 2;
    skeap::SkeapSystem sys(opts);

    HistoryOracle oracle(HistoryOracle::Mode::kPriority);
    std::uint64_t sheds = 0;

    // Epoch 0 under 2x overload: 4 offered inserts per node, cap 2.
    for (NodeId v = 0; v < 8; ++v) {
      for (NodeId i = 0; i < 4; ++i) {
        sheds += note_outcome(oracle, sys.try_insert(v, 1 + (v + i) % 3), 0);
      }
    }
    EXPECT_GE(sheds, 16u) << "each node must shed its over-cap inserts";
    // A non-anchor node crash-restarts inside the batch.
    NodeId victim = kNoNode;
    for (NodeId v : sys.active_nodes()) {
      if (v != sys.anchor() && v != 2) {
        victim = v;
        break;
      }
    }
    ASSERT_NE(victim, kNoNode);
    const std::uint64_t r = sys.net().round();
    sys.net().schedule_crash({victim, r + 3, r + 15});
    sys.run_batch();
    EXPECT_FALSE(sys.net().is_crashed(victim));

    // Epoch 1: more overload plus a delete per node.
    for (NodeId v = 0; v < 8; ++v) {
      for (NodeId i = 0; i < 3; ++i) {
        sheds += note_outcome(oracle, sys.try_insert(v, 1 + (v + i) % 3), 1);
      }
      sys.delete_min(v, [&](std::optional<Element> x) {
        oracle.note_delete_result(1, x);
      });
    }
    sys.run_batch();

    const auto verdict = oracle.check();
    EXPECT_TRUE(verdict.ok) << "seed=" << seed << ": " << verdict.error;
    EXPECT_EQ(sys.net().metrics().sheds(), sheds) << "seed=" << seed;
    EXPECT_GT(sys.net().metrics().retransmitted(), 0u) << "seed=" << seed;
    EXPECT_EQ(sys.net().reliable().staged(), 0u)
        << "seed=" << seed << ": staged sends must drain by quiescence";
    const auto check = core::check_skeap_trace(sys.gather_trace());
    EXPECT_TRUE(check.ok) << "seed=" << seed << ": " << check.error;
  }
}

TEST(Overload, SeapSurvivesOverloadStragglersLossAndCrashes) {
  for (const std::uint64_t seed : overload_seeds()) {
    seap::SeapSystem::Options opts;
    opts.num_nodes = 8;
    opts.seed = seed;
    opts.faults.drop_prob = 0.1;
    opts.faults.stragglers.push_back({3, 3, 0, 100000});
    opts.reliable.enabled = true;
    opts.reliable.max_in_flight = 4;
    opts.max_buffered_ops = 2;
    seap::SeapSystem sys(opts);

    Rng rng(seed ^ 0xabc);
    HistoryOracle oracle(HistoryOracle::Mode::kExact);
    std::uint64_t sheds = 0;

    for (NodeId v = 0; v < 8; ++v) {
      for (int i = 0; i < 4; ++i) {
        sheds += note_outcome(
            oracle, sys.try_insert(v, rng.range(1, 1u << 20)), 0);
      }
    }
    EXPECT_GE(sheds, 16u);
    NodeId victim = kNoNode;
    for (NodeId v : sys.active_nodes()) {
      if (v != sys.anchor() && v != 3) {
        victim = v;
        break;
      }
    }
    ASSERT_NE(victim, kNoNode);
    const std::uint64_t r = sys.net().round();
    sys.net().schedule_crash({victim, r + 3, r + 15});
    sys.run_cycle();
    EXPECT_FALSE(sys.net().is_crashed(victim));

    for (NodeId v = 0; v < 8; ++v) {
      sys.delete_min(v, [&](std::optional<Element> x) {
        oracle.note_delete_result(1, x);
      });
    }
    sys.run_cycle();

    const auto verdict = oracle.check();
    EXPECT_TRUE(verdict.ok) << "seed=" << seed << ": " << verdict.error;
    EXPECT_EQ(sys.net().metrics().sheds(), sheds) << "seed=" << seed;
    EXPECT_GT(sys.net().metrics().retransmitted(), 0u) << "seed=" << seed;
    EXPECT_EQ(sys.net().reliable().staged(), 0u) << "seed=" << seed;
    const auto check = core::check_seap_trace(sys.gather_trace());
    EXPECT_TRUE(check.ok) << "seed=" << seed << ": " << check.error;
  }
}

TEST(Overload, KSelectSurvivesStragglersLossAndCrashes) {
  for (const std::uint64_t seed : overload_seeds()) {
    kselect::KSelectSystem::Options opts;
    opts.num_nodes = 16;
    opts.seed = seed;
    opts.faults.drop_prob = 0.1;
    opts.faults.stragglers.push_back({5, 3, 0, 100000});
    opts.faults.crashes.push_back({3, 2, 12});  // restart mid-selection
    opts.reliable.enabled = true;
    opts.reliable.max_in_flight = 4;
    kselect::KSelectSystem sys(opts);

    Rng rng(seed ^ 0x515);
    std::vector<kselect::CandidateKey> elements;
    for (std::uint64_t i = 0; i < 200; ++i) {
      elements.push_back(
          kselect::CandidateKey{rng.range(1, 1u << 16), i + 1});
    }
    sys.seed_elements(elements);
    const auto out = sys.select(57);
    ASSERT_TRUE(out.result.has_value()) << "seed=" << seed;
    std::sort(elements.begin(), elements.end());
    EXPECT_EQ(*out.result, elements[56]) << "seed=" << seed;
    EXPECT_EQ(sys.net().reliable().staged(), 0u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace sks
