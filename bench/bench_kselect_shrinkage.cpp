// E5 — KSelect candidate-set shrinkage (Lemmas 4.4 and 4.7).
//
// Per-phase candidate counts, against the proven envelopes:
//   after Phase 1:  N = O(n^{3/2} log n)
//   after Phase 2:  N = O(sqrt n)   (then Phase 3 is exact)
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

using namespace sks;
using kselect::CandidateKey;

int main(int argc, char** argv) {
  bench::init("kselect_shrinkage", argc, argv);
  bench::header(
      "E5  KSelect candidate shrinkage",
      "Claims (Lem 4.4/4.7): N = O(n^1.5 log n) after Phase 1 and\n"
      "N = O(sqrt n) entering Phase 3. Table shows N per iteration for\n"
      "n = 256, m = n^2 = 65536, k = m/2.");

  constexpr std::size_t n = 256;
  constexpr std::size_t m = n * n;
  kselect::KSelectSystem sys({.num_nodes = n, .seed = 9});
  Rng rng(77);
  std::vector<CandidateKey> elements;
  for (std::uint64_t i = 1; i <= m; ++i) {
    elements.push_back(CandidateKey{rng.range(1, ~0ULL >> 8), i});
  }
  sys.seed_elements(elements);
  const auto out = sys.select(m / 2);
  if (!out.result) {
    std::printf("selection failed!\n");
    return 1;
  }

  const double phase1_env =
      std::pow(static_cast<double>(n), 1.5) * std::log2(double(n));
  const double phase2_env = std::sqrt(static_cast<double>(n));
  std::printf("envelopes: phase-1 exit %.0f (n^1.5 log n), phase-3 entry "
              "~%.0f (sqrt n; threshold includes sampling constants)\n\n",
              phase1_env, phase2_env);

  bench::Table table({"phase", "iter", "N_before", "N_after", "sampled_n'"});
  for (const auto& st : sys.anchor_node().kselect.stats()) {
    table.row({static_cast<double>(st.phase), static_cast<double>(st.iter),
               static_cast<double>(st.n_before),
               static_cast<double>(st.n_after),
               static_cast<double>(st.sampled)});
  }
  std::printf("\nresult exact: k = %zu -> %s, rounds = %llu\n", m / 2,
              to_string(*out.result).c_str(),
              static_cast<unsigned long long>(out.rounds));
  return 0;
}
