// E1 — Skeap batch processing takes O(log n) rounds w.h.p.
// (Theorem 3.2(3), Corollary 3.6).
//
// Sweep n; each batch carries a mixed per-node workload. If the claim
// holds, rounds/log2(n) settles to a constant as n grows (instead of
// rounds growing linearly with n).
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

int main(int argc, char** argv) {
  bench::init("skeap_rounds", argc, argv);
  bench::header("E1  Skeap rounds per batch",
                "Claim (Thm 3.2.3): a batch of heap operations is processed "
                "in O(log n) rounds w.h.p.\nShape: rounds/log2(n) flat as n "
                "grows 16 -> 2048 (128x).");

  bench::Table table({"n", "ops/batch", "rounds", "rounds/log2n"});
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    if (bench::skip_n(n)) continue;
    skeap::SkeapSystem sys(
        {.num_nodes = n, .num_priorities = 4, .seed = 100 + n});
    Rng rng(7 + n);
    std::uint64_t total_rounds = 0, total_ops = 0;
    constexpr int kBatches = 4;
    for (int b = 0; b < kBatches; ++b) {
      for (NodeId v = 0; v < n; ++v) {
        for (int i = 0; i < 3; ++i) {
          if (rng.flip(0.6)) {
            sys.insert(v, rng.range(1, 4));
          } else {
            sys.delete_min(v);
          }
          ++total_ops;
        }
      }
      if (b == 0) bench::maybe_start_trace(sys.net());
      total_rounds += sys.run_batch();
      if (b == 0) bench::maybe_finish_trace(sys.net());
    }
    bench::report_window(sys.net().metrics().current());
    const double rounds = static_cast<double>(total_rounds) / kBatches;
    const double logn = std::log2(static_cast<double>(n));
    table.row({static_cast<double>(n),
               static_cast<double>(total_ops) / kBatches, rounds,
               rounds / logn});
  }
  return 0;
}
