// E1 — Skeap batch processing takes O(log n) rounds w.h.p.
// (Theorem 3.2(3), Corollary 3.6).
//
// Sweep n; each batch carries a mixed per-node workload. If the claim
// holds, rounds/log2(n) settles to a constant as n grows (instead of
// rounds growing linearly with n).
//
// Extra flags (beyond the shared ones parsed by bench::init):
//   --n <v>     replace the sweep with the single point n = v (up to
//               100k+; the parallel round engine auto-shards large n).
//   --scaling   E17 scaling-efficiency mode: run the same workload at
//               threads ∈ {1, 2, 4, 8} (shards forced to 8) and report
//               rounds/sec plus speedup vs threads=1. Combine with --n
//               to pick the point (default 10240). The rounds column must
//               be identical across rows — the thread count never changes
//               the schedule, only the wall time. With --telemetry the
//               run also prints a per-worker busy/barrier-wait table
//               (wall-clock attribution of the parallel engine).
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct PointResult {
  std::uint64_t rounds = 0;
  std::uint64_t ops = 0;
  double wall_ms = 0.0;
  // Wall-clock attribution of the parallel engine for this point (only
  // meaningful in --scaling mode; profiles empty at threads=1).
  std::vector<sim::WorkerProfile> profiles;
  std::vector<std::uint64_t> shard_busy_ns;
};

/// One measured point: `batches` mixed batches at size n. The timed
/// window covers op issuance and batch processing, not system bootstrap.
PointResult run_point(std::size_t n, int batches, std::size_t threads,
                      std::size_t shards, bool trace_first) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = n;
  opts.num_priorities = 4;
  opts.seed = 100 + n;
  opts.threads = threads;
  opts.shards = shards;
  skeap::SkeapSystem sys(opts);
  bench::TelemetryScope tel(sys.net(),
                            "skeap_rounds n=" + std::to_string(n) +
                                " threads=" + std::to_string(threads));
  Rng rng(7 + n);
  PointResult out;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    for (NodeId v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) {
        if (rng.flip(0.6)) {
          sys.insert(v, rng.range(1, 4));
        } else {
          sys.delete_min(v);
        }
        ++out.ops;
      }
    }
    if (b == 0 && trace_first) bench::maybe_start_trace(sys.net());
    out.rounds += sys.run_batch();
    if (b == 0 && trace_first) bench::maybe_finish_trace(sys.net());
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.profiles = sys.net().worker_profiles();
  out.shard_busy_ns = sys.net().metrics().shard_busy_ns();
  bench::report_window(sys.net().metrics().current());
  return out;
}

/// Median-of---repeat wrapper around run_point. Repetitions re-run the
/// identical deterministic schedule (same seeds), so only wall time
/// varies; the median repetition is reported. The trace (if armed) is
/// captured on the first repetition only.
PointResult run_point_median(std::size_t n, int batches, std::size_t threads,
                             std::size_t shards, bool trace_first) {
  return bench::median_of_repeats(
      [&](int rep) {
        return run_point(n, batches, threads, shards,
                         trace_first && rep == 0);
      },
      [](const PointResult& r) { return r.wall_ms; });
}

int run_sweep(std::size_t custom_n) {
  bench::header("E1  Skeap rounds per batch",
                "Claim (Thm 3.2.3): a batch of heap operations is processed "
                "in O(log n) rounds w.h.p.\nShape: rounds/log2(n) flat as n "
                "grows 16 -> 2048 (128x).");

  std::vector<std::size_t> sweep = {16, 32, 64, 128, 256, 512, 1024, 2048};
  if (custom_n != 0) sweep = {custom_n};

  bench::Table table(
      {"n", "ops/batch", "rounds", "rounds/log2n", "wall_ms"});
  for (std::size_t n : sweep) {
    if (bench::skip_n(n)) continue;
    // Large single points get fewer batches so the sweep stays tractable;
    // rounds are reported per batch either way.
    const int batches = n > 10000 ? 2 : 4;
    const PointResult r = run_point_median(
        n, batches, skeap::SkeapSystem::Options{}.threads,
        skeap::SkeapSystem::Options{}.shards, /*trace_first=*/true);
    const double rounds =
        static_cast<double>(r.rounds) / static_cast<double>(batches);
    const double logn = std::log2(static_cast<double>(n));
    table.row({static_cast<double>(n),
               static_cast<double>(r.ops) / static_cast<double>(batches),
               rounds, rounds / logn, r.wall_ms});
  }
  return 0;
}

int run_scaling(std::size_t n) {
  bench::header(
      "E17  Scaling efficiency of the parallel round engine",
      "The sharded executor splits each round over worker threads; the "
      "schedule is thread-invariant,\nso `rounds` must be constant down "
      "the table while rounds/sec grows with the thread count.");

  const int batches = n > 10000 ? 2 : 4;
  bench::Table table(
      {"threads", "n", "rounds", "wall_ms", "rounds/sec", "speedup"});
  double base_ms = 0.0;
  std::uint64_t base_rounds = 0;
  std::vector<std::pair<std::size_t, PointResult>> points;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const PointResult r = run_point_median(n, batches, threads, /*shards=*/8,
                                           /*trace_first=*/false);
    if (threads == 1) {
      base_ms = r.wall_ms;
      base_rounds = r.rounds;
    } else if (r.rounds != base_rounds) {
      std::fprintf(stderr,
                   "FATAL: rounds changed with the thread count "
                   "(%llu at 1 thread, %llu at %zu)\n",
                   static_cast<unsigned long long>(base_rounds),
                   static_cast<unsigned long long>(r.rounds), threads);
      return 1;
    }
    const double secs = r.wall_ms / 1000.0;
    table.row({static_cast<double>(threads), static_cast<double>(n),
               static_cast<double>(r.rounds), r.wall_ms,
               secs > 0 ? static_cast<double>(r.rounds) / secs : 0.0,
               r.wall_ms > 0 ? base_ms / r.wall_ms : 0.0});
    points.emplace_back(threads, r);
  }

  if (bench::telemetry_enabled()) {
    // Wall-clock attribution per worker: busy = inside shard jobs, wait =
    // blocked on the round barrier (worker 0 is the coordinating thread).
    // At threads=1 the pool does not exist; the coordinator's busy time
    // is the per-shard attribution summed, and it never waits.
    std::printf(
        "\nWorker utilization (busy = shard execution, wait = round "
        "barrier):\n");
    bench::Table util(
        {"threads", "worker", "busy_ms", "wait_ms", "jobs", "busy_frac"});
    for (const auto& [threads, r] : points) {
      if (r.profiles.empty()) {
        std::uint64_t busy = 0;
        for (const std::uint64_t ns : r.shard_busy_ns) busy += ns;
        util.row({static_cast<double>(threads), 0.0,
                  static_cast<double>(busy) / 1e6, 0.0,
                  static_cast<double>(r.shard_busy_ns.size()), 1.0});
        continue;
      }
      for (std::size_t w = 0; w < r.profiles.size(); ++w) {
        const sim::WorkerProfile& p = r.profiles[w];
        const double busy_ms = static_cast<double>(p.busy_ns) / 1e6;
        const double wait_ms = static_cast<double>(p.wait_ns) / 1e6;
        const double denom = busy_ms + wait_ms;
        util.row({static_cast<double>(threads), static_cast<double>(w),
                  busy_ms, wait_ms, static_cast<double>(p.jobs),
                  denom > 0 ? busy_ms / denom : 0.0});
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("skeap_rounds", argc, argv);
  std::size_t custom_n = 0;
  bool scaling = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      custom_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    }
  }
  if (scaling) return run_scaling(custom_n == 0 ? 10240 : custom_n);
  return run_sweep(custom_n);
}
