// E11 — KSelect vs the alternatives discussed in Related Work:
//  * NaiveKSelect — binary search over the value domain with counting
//    aggregations: Θ(log |P|) probes of Θ(log n) rounds each, so rounds
//    grow with the *domain size*, not just n. KSelect's rounds do not.
//  * GossipSelect — an [HMS18]-style sampler, which (like [HMS18]) only
//    handles m = n elements; KSelect handles m = poly(n).
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "baselines/gossip_select.hpp"
#include "baselines/naive_kselect.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"
#include "overlay/topology.hpp"

using namespace sks;
using kselect::CandidateKey;

namespace {

class NaiveNode : public overlay::OverlayNode {
 public:
  NaiveNode(overlay::RouteParams params,
            baselines::NaiveKSelectComponent::Config cfg)
      : OverlayNode(params),
        naive(*this, cfg, [this] { return elements; },
              [this](std::uint64_t, std::optional<Element> r) {
                results.push_back(r);
              }) {}
  std::vector<Element> elements;
  baselines::NaiveKSelectComponent naive;
  std::vector<std::optional<Element>> results;
};

struct NaiveOutcome {
  std::uint64_t rounds = 0;
  std::uint64_t probes = 0;
  bool ok = false;
};

NaiveOutcome run_naive(std::size_t n, const std::vector<Element>& elements,
                       std::uint64_t k, Priority max_priority,
                       std::uint64_t seed) {
  sim::NetworkConfig cfg;
  cfg.seed = seed;
  sim::Network net(cfg);
  HashFunction h(seed);
  auto links = overlay::build_topology(n, h);
  const auto params = overlay::RouteParams::for_system(n);
  baselines::NaiveKSelectComponent::Config ncfg;
  ncfg.max_priority = max_priority;
  ncfg.max_id = elements.size() + 1;
  NodeId anchor = kNoNode;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = net.add_node(std::make_unique<NaiveNode>(params, ncfg));
    auto& node = net.node_as<NaiveNode>(id);
    node.install_links(links[i]);
    if (node.hosts_anchor()) anchor = id;
  }
  Rng rng(seed ^ 0xe1e3ULL);
  for (const auto& e : elements) {
    net.node_as<NaiveNode>(static_cast<NodeId>(rng.below(n)))
        .elements.push_back(e);
  }
  net.node_as<NaiveNode>(anchor).naive.start(1, k);
  NaiveOutcome out;
  out.rounds = net.run_until_idle();
  out.probes = net.node_as<NaiveNode>(anchor).naive.probes_used(1);
  auto sorted = elements;
  std::sort(sorted.begin(), sorted.end());
  const auto& results = net.node_as<NaiveNode>(anchor).results;
  out.ok = !results.empty() && results.back().has_value() &&
           *results.back() == sorted[k - 1];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("kselect_baselines", argc, argv);
  bench::header(
      "E11  KSelect vs binary-search counting vs gossip sampling",
      "Related-work comparison: KSelect's rounds are O(log n) regardless of "
      "the priority domain;\nbinary search pays ~log|P| aggregation phases; "
      "gossip selection handles only m = n.");

  std::printf("-- m = 20n elements, domain sweep (n = 128, k = m/2) --\n");
  bench::Table t1(
      {"dom_bits", "kselect_rnd", "naive_rnd", "naive_probes", "ok"});
  for (int dom_bits : {16, 32, 48}) {
    const std::size_t n = 128, m = 20 * n;
    const Priority max_p = (Priority{1} << dom_bits) - 1;
    Rng rng(42 + static_cast<std::uint64_t>(dom_bits));
    std::vector<Element> elements;
    for (std::uint64_t i = 1; i <= m; ++i) {
      elements.push_back(Element{rng.range(1, max_p), i});
    }

    kselect::KSelectSystem ks({.num_nodes = n, .seed = 77});
    ks.seed_elements(elements);
    const auto kout = ks.select(m / 2);
    auto sorted = elements;
    std::sort(sorted.begin(), sorted.end());
    const bool kok =
        kout.result.has_value() && *kout.result == sorted[m / 2 - 1];

    const auto nout = run_naive(n, elements, m / 2, max_p, 99);
    t1.row({static_cast<double>(dom_bits),
            static_cast<double>(kout.rounds),
            static_cast<double>(nout.rounds),
            static_cast<double>(nout.probes),
            (kok && nout.ok) ? 1.0 : 0.0});
  }

  std::printf("\n-- m = n elements (the [HMS18] setting), n sweep --\n");
  bench::Table t2({"n", "kselect_rnd", "gossip_rnd", "gossip_iters", "ok"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    if (bench::skip_n(n)) continue;
    Rng rng(17 + n);
    std::vector<Element> values;
    for (std::uint64_t i = 1; i <= n; ++i) {
      values.push_back(Element{rng.range(1, ~0ULL >> 16), i});
    }
    auto sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const std::uint64_t k = n / 2;

    kselect::KSelectSystem ks({.num_nodes = n, .seed = 31});
    ks.seed_elements(values);
    const auto kout = ks.select(k);
    const bool kok = kout.result.has_value() && *kout.result == sorted[k - 1];

    baselines::GossipSystem gs({.num_nodes = n, .seed = 33});
    gs.seed_values(values);
    const auto gout = gs.select(k);
    const bool gok = gout.result.has_value() && *gout.result == sorted[k - 1];

    t2.row({static_cast<double>(n), static_cast<double>(kout.rounds),
            static_cast<double>(gout.rounds),
            static_cast<double>(gout.iterations),
            (kok && gok) ? 1.0 : 0.0});
  }
  std::printf(
      "\nNote: GossipSelect's counting is star-aggregated at the initiator "
      "(Theta(n) congestion there),\nwhich is why its rounds look small — "
      "the aggregation tree is what removes that bottleneck.\n");
  return 0;
}
