// Ablations of KSelect's design knobs (the choices DESIGN.md calls out):
//  * δ (the rank margin of Phase 2c) — smaller δ prunes harder per
//    iteration but risks disabled prunes (verification keeps it safe);
//    larger δ slows shrinkage.
//  * the sample size C' = sample_scale · sqrt(n) — larger samples give
//    better pivots per iteration at more sorting work.
//  * Phase 1 on/off — the quantile pruning pass pays for itself when
//    m >> n.
#include <algorithm>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

using namespace sks;
using kselect::CandidateKey;

namespace {

struct Result {
  std::uint64_t rounds = 0;
  std::size_t iterations = 0;
  bool ok = false;
};

Result run(std::size_t n, std::size_t m, double delta_scale,
           std::uint32_t phase1_iters_override, std::uint64_t seed) {
  kselect::KSelectSystem sys({.num_nodes = n,
                              .seed = seed,
                              .delta_scale = delta_scale,
                              .phase1_iterations = phase1_iters_override,
                              // Large δ starves Phase 2c (δ swallows the
                              // sample, only the extremes fallback prunes),
                              // so allow many more iterations than the
                              // production default.
                              .max_iterations = 1024});
  Rng rng(seed * 3 + 1);
  std::vector<CandidateKey> elements;
  for (std::uint64_t i = 1; i <= m; ++i) {
    elements.push_back(CandidateKey{rng.range(1, ~0ULL >> 8), i});
  }
  sys.seed_elements(elements);
  const auto out = sys.select(m / 2);
  auto sorted = elements;
  std::sort(sorted.begin(), sorted.end());
  Result r;
  r.rounds = out.rounds;
  r.iterations = sys.anchor_node().kselect.stats().size();
  r.ok = out.result.has_value() && *out.result == sorted[m / 2 - 1];
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ablations", argc, argv);
  bench::header("Ablations  KSelect design knobs",
                "Exactness holds for every setting (the verification steps "
                "are unconditional);\nonly rounds/iterations move.");

  constexpr std::size_t n = 256;
  constexpr std::size_t m = 256 * 64;

  std::printf("-- delta scale (rank margin of Phase 2c), n=%zu m=%zu --\n", n,
              m);
  bench::Table t1({"delta_scale", "rounds", "iterations", "exact"});
  for (double ds : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto r = run(n, m, ds, 0, 1000 + static_cast<std::uint64_t>(ds * 4));
    t1.row({ds, static_cast<double>(r.rounds),
            static_cast<double>(r.iterations), r.ok ? 1.0 : 0.0});
  }

  std::printf("\n-- Phase 1 iterations (0 rows use the paper's log q + 1) "
              "--\n");
  bench::Table t2({"p1_iters", "rounds", "iterations", "exact"});
  for (std::uint32_t p1 : {1u, 2u, 4u}) {
    const auto r = run(n, m, 0.5, p1, 2000 + p1);
    t2.row({static_cast<double>(p1), static_cast<double>(r.rounds),
            static_cast<double>(r.iterations), r.ok ? 1.0 : 0.0});
  }
  // The paper's automatic choice for reference.
  const auto r_auto = run(n, m, 0.5, 0, 2999);
  std::printf("auto (log q + 1): rounds=%llu iterations=%zu exact=%d\n",
              static_cast<unsigned long long>(r_auto.rounds),
              r_auto.iterations, r_auto.ok ? 1 : 0);
  return 0;
}
