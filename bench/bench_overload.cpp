// E20 — overload resilience: graceful degradation under sustained
// overload with every resilience knob engaged at once.
//
// Open-loop arrival sweep over a fixed Skeap deployment (n nodes,
// admission cap C per node, flow-control window W, adaptive batching
// min..max): each insert epoch draws a Poisson number of arrivals per
// node from a dedicated rng stream — the arrival process never consults
// the network's rng, so the schedule is identical at every load point —
// at rate load_x * B where B is the peak per-node service rate
// (adaptive_batch_max). At load_x >= 2 the offered load is at least
// twice what the cluster can drain, so admission control must shed.
//
// Each sweep point is a safety witness, not just a throughput sample:
//
//   * bounded memory: max queued depth never exceeds C * n (the
//     admission cap), no matter how far the arrival rate outruns the
//     service rate;
//   * zero acked-op loss: every insert that was accepted and not
//     later evicted is returned by exactly one deleteMin during the
//     drain phase, validated by the shed-aware HistoryOracle;
//   * shed accounting: the client-side shed count (rejected incoming +
//     evicted victims) equals sim::Metrics::sheds();
//   * flow control drains: no staged sends are left parked at the end.
//
// The phases are insert-only epochs, then a flush to empty the backlog,
// then delete-only epochs — so the oracle's per-epoch minimality check
// is exact (no delete ever races a buffered-but-unbatched insert).
//
// A final disabled-substrate check replays a plain workload with the
// overload knobs armed but inactive (huge admission cap, pending-ring
// bound, no window) and asserts rounds/messages/bits are identical to
// the unarmed run — the resilience machinery costs nothing until it
// actually engages.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"
#include "tests/common/history_oracle.hpp"

using namespace sks;

namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kPriorities = 4;
constexpr std::size_t kCapPerNode = 16;     // admission cap C
constexpr std::size_t kBatchMin = 2;        // adaptive batching floor
constexpr std::size_t kBatchMax = 8;        // peak service rate B
constexpr std::uint64_t kWindow = 8;        // flow-control max_in_flight
constexpr std::size_t kInsertEpochs = 12;
constexpr std::uint64_t kSeed = 0xE20;

/// Knuth Poisson sampler on the dedicated arrival stream. lambda is at
/// most kBatchMax * 4 here, far from exp() underflow.
std::uint64_t poisson(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double p = 1.0;
  std::uint64_t k = 0;
  do {
    ++k;
    p *= rng.unit();
  } while (p > limit);
  return k - 1;
}

struct OverloadResult {
  std::uint64_t rounds = 0;
  std::uint64_t offered = 0;    ///< arrivals drawn (insert attempts)
  std::uint64_t accepted = 0;   ///< try_insert buffered the element
  std::uint64_t shed = 0;       ///< rejected incoming + evicted victims
  std::uint64_t matched = 0;    ///< drain deletes that returned an element
  std::uint64_t max_depth = 0;  ///< peak queued_ops() right before a batch
  std::uint64_t epoch_p99 = 0;  ///< p99 of per-epoch round counts
  sim::MetricsSnapshot snap;
  bool ok = false;
};

OverloadResult run_overload(double load_x, std::uint64_t seed) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = kNodes;
  opts.num_priorities = kPriorities;
  opts.seed = seed;
  opts.reliable.enabled = true;
  opts.reliable.max_in_flight = kWindow;
  opts.max_buffered_ops = kCapPerNode;
  opts.max_pending_rounds = 1u << 16;
  opts.adaptive_batch_min = kBatchMin;
  opts.adaptive_batch_max = kBatchMax;
  skeap::SkeapSystem sys(opts);
  bench::TelemetryScope tel(sys.net(),
                            "overload x=" + std::to_string(load_x));
  if (tel.sampler() != nullptr) {
    tel.sampler()->set_queue_depth_probe(
        [&sys] { return static_cast<std::uint64_t>(sys.cluster().queued_ops()); });
    tel.sampler()->set_batch_size_probe(
        [&sys] { return static_cast<std::uint64_t>(sys.cluster().batch_limit()); });
  }

  test::HistoryOracle oracle(test::HistoryOracle::Mode::kPriority);
  Rng arrivals(seed ^ 0xA221ULL);  // dedicated open-loop arrival stream
  const double lambda = load_x * static_cast<double>(kBatchMax);

  OverloadResult r;
  std::uint64_t epoch = 0;
  std::uint64_t evicted = 0;
  std::vector<std::uint64_t> epoch_rounds;
  const auto run_epoch = [&] {
    const std::uint64_t took = sys.run_batch();
    r.rounds += took;
    epoch_rounds.push_back(took);
    ++epoch;
  };

  // Insert phase: open-loop arrivals, service capped by the adaptive
  // batch limit, overflow past the admission cap shed.
  for (std::size_t e = 0; e < kInsertEpochs; ++e) {
    for (NodeId v = 0; v < kNodes; ++v) {
      const std::uint64_t k = poisson(arrivals, lambda);
      r.offered += k;
      for (std::uint64_t i = 0; i < k; ++i) {
        const Priority prio =
            static_cast<Priority>(arrivals.range(1, kPriorities));
        const auto out = sys.try_insert(v, prio);
        if (out.element) {
          oracle.note_insert(*out.element, epoch);
          ++r.accepted;
          // The eviction case: a previously acknowledged insert was
          // retracted to admit this one. Outright rejections are never
          // note_insert-ed, so there is nothing to retract.
          if (out.shed) {
            oracle.note_shed(*out.shed, epoch);
            ++evicted;
          }
        }
        if (out.shed) ++r.shed;
      }
    }
    r.max_depth = std::max(
        r.max_depth,
        static_cast<std::uint64_t>(sys.cluster().queued_ops()));
    run_epoch();
  }

  // Flush: drain the backlog the partial batches left behind, so the
  // delete phase sees every accepted insert already applied.
  while (sys.cluster().queued_ops() > 0) run_epoch();

  // Delete phase: pull everything back out. Per epoch each node issues
  // at most the current batch limit, so every delete executes in the
  // epoch it was issued in and the oracle's minimality check is exact.
  std::uint64_t remaining = r.accepted - evicted;
  while (remaining > 0) {
    const std::size_t lim = sys.cluster().batch_limit();
    for (NodeId v = 0; v < kNodes && remaining > 0; ++v) {
      for (std::size_t i = 0; i < lim && remaining > 0; ++i) {
        sys.delete_min(v, [&oracle, &r, ep = epoch](std::optional<Element> x) {
          oracle.note_delete_result(ep, x);
          r.matched += x ? 1u : 0u;
        });
        --remaining;
      }
    }
    run_epoch();
  }

  const auto verdict = oracle.check();
  if (!verdict.ok) {
    std::printf("  oracle violation at load %.1fx: %s\n", load_x,
                verdict.error.c_str());
  }
  r.snap = sys.net().metrics().current();
  std::sort(epoch_rounds.begin(), epoch_rounds.end());
  r.epoch_p99 =
      epoch_rounds.empty()
          ? 0
          : epoch_rounds[(epoch_rounds.size() * 99 + 99) / 100 - 1];
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = verdict.ok && check.ok &&
         r.matched == r.accepted - evicted &&        // zero acked-op loss
         oracle.live_after_replay() == 0 &&
         r.max_depth <= kCapPerNode * kNodes &&      // bounded memory
         r.snap.sheds == r.shed &&                   // shed accounting
         sys.net().reliable().staged() == 0;         // window drained
  return r;
}

/// Fixed fault-free workload for the disabled-substrate check: one
/// insert per node, one delete per even node, reliable transport on.
struct PlainResult {
  std::uint64_t rounds = 0;
  sim::MetricsSnapshot snap;
  bool ok = false;
};

PlainResult run_plain(bool armed, std::uint64_t seed) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = kNodes;
  opts.num_priorities = kPriorities;
  opts.seed = seed;
  opts.reliable.enabled = true;
  if (armed) {
    // Every overload knob configured but never engaged: the cap is far
    // above the workload, the pending-ring bound far above any delay,
    // and the window wide enough that nothing ever stages.
    opts.max_buffered_ops = 1u << 20;
    opts.max_pending_rounds = 1u << 16;
    opts.reliable.max_in_flight = 1u << 20;
  }
  skeap::SkeapSystem sys(opts);

  PlainResult r;
  for (NodeId v = 0; v < kNodes; ++v) sys.insert(v, 1 + v % kPriorities);
  r.rounds += sys.run_batch();
  std::size_t matched = 0;
  for (NodeId v = 0; v < kNodes; v += 2) {
    sys.delete_min(v,
                   [&](std::optional<Element> x) { matched += x ? 1u : 0u; });
  }
  r.rounds += sys.run_batch();
  r.snap = sys.net().metrics().current();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = check.ok && matched == kNodes / 2;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("overload", argc, argv);
  bench::header(
      "E20  overload resilience: open-loop arrival sweep",
      "Claim (graceful degradation): under sustained overload (arrivals "
      "at up to 4x the service\nrate) the admission cap bounds memory, "
      "every accepted-and-not-evicted insert is returned\nby exactly one "
      "delete (zero acked-op loss), sheds are fully accounted, and the "
      "flow-control\nwindow drains. Goodput degrades smoothly instead of "
      "collapsing.");

  std::printf("n=%zu cap=%zu/node window=%llu batch=%zu..%zu "
              "insert_epochs=%zu\n\n",
              kNodes, kCapPerNode,
              static_cast<unsigned long long>(kWindow), kBatchMin,
              kBatchMax, kInsertEpochs);

  bench::Table table({"load_x", "offered", "accepted", "sheds",
                      "goodput_pct", "max_depth", "depth_bound", "stalls",
                      "epoch_p99_r", "rounds", "ok"});
  bool all_ok = true;
  for (const double load : {0.5, 1.0, 2.0, 4.0}) {
    // --max-n trims the heaviest load points in smoke runs (n = 10x the
    // load multiplier, so --max-n 20 keeps 0.5x..2x).
    if (bench::skip_n(static_cast<std::size_t>(load * 10.0))) continue;
    const OverloadResult r = run_overload(load, kSeed);
    all_ok = all_ok && r.ok;
    bench::report_window(r.snap);
    const double goodput_pct =
        r.offered == 0 ? 100.0
                       : 100.0 * static_cast<double>(r.matched) /
                             static_cast<double>(r.offered);
    table.row({load, static_cast<double>(r.offered),
               static_cast<double>(r.accepted),
               static_cast<double>(r.shed), goodput_pct,
               static_cast<double>(r.max_depth),
               static_cast<double>(kCapPerNode * kNodes),
               static_cast<double>(r.snap.window_stalls),
               static_cast<double>(r.epoch_p99),
               static_cast<double>(r.rounds), r.ok ? 1.0 : 0.0});
  }

  // Armed-but-inactive knobs must replay the unarmed run byte-for-byte.
  std::printf("\n-- disabled-substrate check (cap, pending bound and "
              "window armed, never engaged) --\n");
  const PlainResult plain = run_plain(false, kSeed);
  const PlainResult armed = run_plain(true, kSeed);
  const bool identical = plain.rounds == armed.rounds &&
                         plain.snap.total_messages ==
                             armed.snap.total_messages &&
                         plain.snap.total_bits == armed.snap.total_bits &&
                         armed.snap.window_stalls == 0 &&
                         armed.snap.sheds == 0;
  std::printf("armed-but-inactive knobs replay the plain run "
              "byte-for-byte: %s\n",
              identical ? "OK" : "MISMATCH");
  all_ok = all_ok && identical && plain.ok && armed.ok;
  return all_ok ? 0 : 1;
}
