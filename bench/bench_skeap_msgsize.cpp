// E3 — Skeap message size is O(Λ log² n) bits (Theorem 3.2(5), Lemma 3.8).
//
// The aggregated batch (and its assignment) are the large messages: their
// size grows linearly in the injection rate Λ and polylogarithmically in
// n. Two sweeps: Λ at fixed n, and n at fixed Λ.
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

std::uint64_t run_and_measure(std::size_t n, std::uint64_t lambda,
                              std::uint64_t seed) {
  skeap::SkeapSystem sys({.num_nodes = n, .num_priorities = 4, .seed = seed});
  Rng rng(seed * 31 + 1);
  (void)sys.net().metrics().take();
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < lambda; ++i) {
      // Alternate inserts and deletes: the worst case of Lemma 3.8 (each
      // pair opens a new batch entry).
      if (i % 2 == 0) {
        sys.insert(v, rng.range(1, 4));
      } else {
        sys.delete_min(v);
      }
    }
  }
  bench::maybe_start_trace(sys.net());
  sys.run_batch();
  bench::maybe_finish_trace(sys.net());
  const auto snap = sys.net().metrics().take();
  bench::report_window(snap);
  // The claim is about the protocol's own messages (batches/assignments),
  // not the DHT payloads.
  return std::max(bench::max_bits_of_type(snap, "skeap.batch_up"),
                  bench::max_bits_of_type(snap, "skeap.assign_down"));
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("skeap_msgsize", argc, argv);
  bench::header(
      "E3  Skeap message size",
      "Claim (Thm 3.2.5): messages are O(Lambda log^2 n) bits.\n"
      "Shape: max batch/assignment bits grow ~linearly in Lambda (fixed n)\n"
      "and ~log^2 in n (fixed Lambda). Alternating ins/del is the worst "
      "case.");

  std::printf("-- sweep Lambda at n = 128 --\n");
  bench::Table t1({"Lambda", "max_bits", "bits/Lambda"});
  for (std::uint64_t lambda : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto bits = run_and_measure(128, lambda, 40 + lambda);
    t1.row({static_cast<double>(lambda), static_cast<double>(bits),
            static_cast<double>(bits) / static_cast<double>(lambda)});
  }

  std::printf("\n-- sweep n at Lambda = 8 --\n");
  bench::Table t2({"n", "max_bits", "bits/log2^2n"});
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    if (bench::skip_n(n)) continue;
    const auto bits = run_and_measure(n, 8, 80 + n);
    const double l2 = std::log2(static_cast<double>(n));
    t2.row({static_cast<double>(n), static_cast<double>(bits),
            static_cast<double>(bits) / (l2 * l2)});
  }
  return 0;
}
