// E15 — crash recovery: detection latency, repair latency, and the price
// of replication.
//
// Two sweeps over the Skeap batch workload (the recovery substrate is
// protocol-agnostic, so one protocol suffices for its cost profile):
//
//  1. Crash sweep: n nodes, replication k=2, `crashes` crash-stop faults
//     injected one per batch mid-epoch. For every recovery the coordinator
//     logs the declaration and repair rounds; the table reports the mean
//     time-to-detect (crash -> declared dead, bounded by the detector's
//     suspect_after + declare_after window) and time-to-recover (declared
//     -> membership/anchor/element repair complete, the O(log n) part)
//     across crashes, plus the rounds of the whole run. Semantics are
//     revalidated per run: every surviving element must still drain in
//     priority order, so each row is also a losslessness witness.
//
//  2. Replication overhead: the identical fault-free workload at k = 0, 1
//     and 2 against the recovery-disabled baseline, isolating what the
//     failure detector (heartbeats; the k=0 row) and the mirror deltas
//     (the k=1/2 rows) cost in messages and bits when nothing crashes.
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct RunResult {
  std::uint64_t rounds = 0;
  double detect_rounds = 0;   ///< mean crash -> declared, over crashes
  double recover_rounds = 0;  ///< mean declared -> repaired, over crashes
  std::size_t recoveries = 0;
  sim::MetricsSnapshot snap;
  bool ok = false;
};

skeap::SkeapSystem::Options base_options(std::size_t n, std::uint64_t seed,
                                         bool recovery, std::uint32_t k) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = n;
  opts.num_priorities = 3;
  opts.seed = seed;
  opts.reliable.enabled = recovery;  // crash recovery rides on reliability
  opts.recovery.enabled = recovery;
  opts.recovery.replication = k;
  return opts;
}

/// One prepopulation batch, then `crashes` batches each of which loses one
/// non-anchor survivor mid-epoch, then a drain of every element that was
/// acknowledged. Crash rounds are recorded at injection so detection can
/// be measured from the fault, not from the declaration.
RunResult run_crash_workload(std::size_t n, std::size_t crashes,
                             std::uint32_t k, std::uint64_t seed) {
  auto opts = base_options(n, seed, true, k);
  skeap::SkeapSystem sys(opts);
  // The crash workload is the telemetry showpiece: the suspect /
  // declared_dead / recovery series light up mid-run.
  bench::TelemetryScope tel(sys.net(),
                            "recovery n=" + std::to_string(n) + " crashes=" +
                                std::to_string(crashes));
  RunResult r;

  std::size_t acked = 0;
  for (NodeId v = 0; v < n; ++v) {
    sys.insert(v, 1 + v % 3);
    sys.insert(v, 1 + (v + 1) % 3);
  }
  r.rounds += sys.run_batch();
  acked += 2 * sys.active_nodes().size();

  std::vector<std::uint64_t> crash_rounds;
  for (std::size_t i = 0; i < crashes; ++i) {
    // Copy: run_batch mutates the live active set when the victim dies.
    const std::set<NodeId> active = sys.active_nodes();
    NodeId victim = kNoNode;
    for (NodeId v : active) {
      if (v != sys.cluster().anchor()) victim = v;
    }
    const std::uint64_t at = sys.net().round() + 4;
    sys.net().schedule_crash({victim, at, 0});
    crash_rounds.push_back(at);
    for (NodeId v : active) sys.insert(v, 1 + v % 3);
    r.rounds += sys.run_batch();
    // The victim's insert from the aborted epoch was never acknowledged.
    acked += active.size() -
             (sys.active_nodes().count(victim) == 0 ? 1 : 0);
  }

  // Drain: every acknowledged element must still come back, in priority
  // order (the trace checker audits the order; the count audits loss).
  std::size_t drained = 0;
  while (drained < acked) {
    std::size_t want = acked - drained;
    for (NodeId v : sys.active_nodes()) {
      if (want == 0) break;
      sys.delete_min(v, [&](std::optional<Element> x) {
        drained += x.has_value() ? 1u : 0u;
      });
      --want;
    }
    r.rounds += sys.run_batch();
  }

  const auto& log = sys.cluster().recovery_log();
  r.recoveries = log.size();
  for (std::size_t i = 0; i < log.size() && i < crash_rounds.size(); ++i) {
    r.detect_rounds +=
        static_cast<double>(log[i].declared_round - crash_rounds[i]);
    r.recover_rounds +=
        static_cast<double>(log[i].recovered_round - log[i].declared_round);
  }
  if (!log.empty()) {
    r.detect_rounds /= static_cast<double>(log.size());
    r.recover_rounds /= static_cast<double>(log.size());
  }
  r.snap = sys.net().metrics().current();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = check.ok && drained == acked && r.recoveries == crashes;
  return r;
}

/// The fault-free workload used by the overhead sweep: two batches, no
/// crashes, so every message beyond the baseline is pure substrate cost.
RunResult run_overhead_workload(std::size_t n, bool recovery,
                                std::uint32_t k, std::uint64_t seed) {
  auto opts = base_options(n, seed, recovery, k);
  opts.reliable.enabled = true;  // same transport in every column
  skeap::SkeapSystem sys(opts);
  RunResult r;
  for (NodeId v = 0; v < n; ++v) sys.insert(v, 1 + v % 3);
  r.rounds += sys.run_batch();
  std::size_t matched = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v % 2 != 0) continue;
    sys.delete_min(v,
                   [&](std::optional<Element> x) { matched += x ? 1u : 0u; });
  }
  r.rounds += sys.run_batch();
  r.snap = sys.net().metrics().current();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = check.ok && matched == n / 2;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("recovery", argc, argv);
  bench::header(
      "E15  crash recovery: detection + repair latency, replication cost",
      "Claim (robustness): a crash-stop fault is declared within the "
      "detector's fixed window,\nthe membership/anchor/element repair "
      "completes in O(log n) rounds, no acknowledged\nelement is lost, and "
      "fault-free replication costs a bounded message/bit overhead.");

  constexpr std::uint64_t kSeed = 7700;

  std::printf("-- crash sweep (k=2, one crash-stop per batch) --\n");
  bench::Table crash_table({"n", "crashes", "recoveries", "detect_rounds",
                            "recover_rounds", "total_rounds", "ok"});
  bool all_ok = true;
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    if (bench::skip_n(n)) continue;
    for (const std::size_t crashes : {1u, 2u}) {
      const RunResult r = run_crash_workload(n, crashes, 2, kSeed + n);
      all_ok = all_ok && r.ok;
      bench::report_window(r.snap);
      crash_table.row({static_cast<double>(n), static_cast<double>(crashes),
                       static_cast<double>(r.recoveries), r.detect_rounds,
                       r.recover_rounds, static_cast<double>(r.rounds),
                       r.ok ? 1.0 : 0.0});
    }
  }

  std::printf("\n-- replication overhead (fault-free, vs recovery off) --\n");
  bench::Table cost_table({"n", "k", "rounds", "messages", "bits",
                           "msg_overhead", "bit_overhead", "ok"});
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    if (bench::skip_n(n)) continue;
    const RunResult base = run_overhead_workload(n, false, 0, kSeed + n);
    all_ok = all_ok && base.ok;
    for (const std::uint32_t k : {0u, 1u, 2u}) {
      const RunResult r = run_overhead_workload(n, true, k, kSeed + n);
      all_ok = all_ok && r.ok;
      bench::report_window(r.snap);
      const double msg_overhead =
          static_cast<double>(r.snap.total_messages) /
          static_cast<double>(
              base.snap.total_messages ? base.snap.total_messages : 1);
      const double bit_overhead =
          static_cast<double>(r.snap.total_bits) /
          static_cast<double>(base.snap.total_bits ? base.snap.total_bits
                                                   : 1);
      cost_table.row({static_cast<double>(n), static_cast<double>(k),
                      static_cast<double>(r.rounds),
                      static_cast<double>(r.snap.total_messages),
                      static_cast<double>(r.snap.total_bits), msg_overhead,
                      bit_overhead, r.ok ? 1.0 : 0.0});
    }
  }
  return all_ok ? 0 : 1;
}
