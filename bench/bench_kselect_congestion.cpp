// E6 — KSelect congestion is Õ(1) and messages are O(log n) bits
// (Theorem 4.2).
//
// Sweep n at m = 20n: max per-node per-round messages should stay
// polylogarithmic (flat-ish), and the largest protocol message should
// grow like log n — crucially *not* with m or the injection pattern.
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

using namespace sks;
using kselect::CandidateKey;

int main(int argc, char** argv) {
  bench::init("kselect_congestion", argc, argv);
  bench::header(
      "E6  KSelect congestion and message size",
      "Claim (Thm 4.2): congestion O~(1), messages O(log n) bits.\n"
      "Shape: congestion grows at most polylog in n; max message bits "
      "~log n.");

  bench::Table table(
      {"n", "m", "congestion", "max_bits", "bits/log2n"});
  for (std::size_t n : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    if (bench::skip_n(n)) continue;
    const std::size_t m = 20 * n;
    kselect::KSelectSystem sys({.num_nodes = n, .seed = 500 + n});
    Rng rng(13 + n);
    std::vector<CandidateKey> elements;
    for (std::uint64_t i = 1; i <= m; ++i) {
      elements.push_back(CandidateKey{rng.range(1, ~0ULL >> 8), i});
    }
    sys.seed_elements(elements);
    (void)sys.net().metrics().take();
    const auto out = sys.select(m / 3);
    if (!out.result) {
      std::printf("n=%zu: selection failed!\n", n);
      return 1;
    }
    const auto snap = sys.net().metrics().take();
    const auto kselect_bits = bench::max_bits_of_type(snap, "kselect.");
    table.row({static_cast<double>(n), static_cast<double>(m),
               static_cast<double>(snap.max_congestion),
               static_cast<double>(kselect_bits),
               static_cast<double>(kselect_bits) /
                   std::log2(static_cast<double>(n))});
  }
  return 0;
}
