// E4 — KSelect runs in O(log n) rounds w.h.p. (Theorem 4.2).
//
// Sweep n with m = n^q for q ∈ {1, 1.5, 2}; the round count should grow
// logarithmically in n (flat rounds/log2 n), not with m.
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "kselect/kselect_system.hpp"

using namespace sks;
using kselect::CandidateKey;

namespace {

std::vector<CandidateKey> make_elements(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CandidateKey> out;
  out.reserve(m);
  for (std::uint64_t i = 1; i <= m; ++i) {
    out.push_back(CandidateKey{rng.range(1, ~0ULL >> 8), i});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("kselect_rounds", argc, argv);
  bench::header("E4  KSelect rounds",
                "Claim (Thm 4.2): k-selection over m = poly(n) elements "
                "finishes in O(log n) rounds w.h.p.\nShape: rounds/log2(n) "
                "roughly flat in n; only weak dependence on m.");

  bench::Table table({"n", "m", "k", "rounds", "rounds/log2n", "iters"});
  for (std::size_t n : {32u, 128u, 512u}) {
    if (bench::skip_n(n)) continue;
    for (double q : {1.0, 1.5, 2.0}) {
      const auto m = static_cast<std::size_t>(
          std::pow(static_cast<double>(n), q));
      kselect::KSelectSystem sys({.num_nodes = n, .seed = 100 + n});
      sys.seed_elements(make_elements(m, 3 * n + static_cast<std::size_t>(q)));
      const std::uint64_t k = m / 2;
      bench::maybe_start_trace(sys.net());
      const auto out = sys.select(k);
      bench::maybe_finish_trace(sys.net());
      bench::report_window(sys.net().metrics().current());
      if (!out.result) {
        std::printf("n=%zu m=%zu: selection failed!\n", n, m);
        return 1;
      }
      const double logn = std::log2(static_cast<double>(n));
      table.row({static_cast<double>(n), static_cast<double>(m),
                 static_cast<double>(k), static_cast<double>(out.rounds),
                 static_cast<double>(out.rounds) / logn,
                 static_cast<double>(
                     sys.anchor_node().kselect.stats().size())});
    }
  }
  return 0;
}
