// E8 — the headline comparison: Seap's messages stay O(log n) bits
// regardless of the injection rate, while Skeap's grow with Λ
// (Theorem 5.1(5) vs Theorem 3.2(5); Section 1.4: "in scenarios with high
// injection rates, we recommend using Seap instead of Skeap due to the
// significantly smaller message size").
//
// Sweep Λ at fixed n and report each protocol's largest own-protocol
// message. The crossover story: Skeap's batch grows without bound, Seap's
// counters do not.
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

std::uint64_t skeap_bits(std::size_t n, std::uint64_t lambda,
                         std::uint64_t seed) {
  skeap::SkeapSystem sys({.num_nodes = n, .num_priorities = 4, .seed = seed});
  Rng rng(seed + 1);
  (void)sys.net().metrics().take();
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < lambda; ++i) {
      if (i % 2 == 0) {
        sys.insert(v, rng.range(1, 4));
      } else {
        sys.delete_min(v);
      }
    }
  }
  sys.run_batch();
  const auto snap = sys.net().metrics().take();
  return bench::max_bits_of_type(snap, "skeap.");
}

std::uint64_t seap_bits(std::size_t n, std::uint64_t lambda,
                        std::uint64_t seed) {
  seap::SeapSystem sys({.num_nodes = n, .seed = seed});
  Rng rng(seed + 1);
  (void)sys.net().metrics().take();
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < lambda; ++i) {
      if (i % 2 == 0) {
        sys.insert(v, rng.range(1, ~0ULL >> 16));
      } else {
        sys.delete_min(v);
      }
    }
  }
  sys.run_cycle();
  const auto snap = sys.net().metrics().take();
  // Seap's own control messages plus the KSelect machinery it invokes.
  return std::max(bench::max_bits_of_type(snap, "seap."),
                  bench::max_bits_of_type(snap, "kselect."));
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("seap_vs_skeap_msgsize", argc, argv);
  bench::header(
      "E8  message size: Skeap O(Lambda log^2 n) vs Seap O(log n)",
      "Claim (Thm 5.1.5): Seap's messages are O(log n) bits independent of "
      "the injection rate.\nShape: Skeap's max message grows ~linearly with "
      "Lambda; Seap's stays flat. n = 128.");

  constexpr std::size_t kNodes = 128;
  bench::Table table({"Lambda", "skeap_bits", "seap_bits", "ratio"});
  for (std::uint64_t lambda : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto sk = skeap_bits(kNodes, lambda, 900 + lambda);
    const auto se = seap_bits(kNodes, lambda, 900 + lambda);
    table.row({static_cast<double>(lambda), static_cast<double>(sk),
               static_cast<double>(se),
               static_cast<double>(sk) / static_cast<double>(se)});
  }
  return 0;
}
