// E12 — Join()/Leave() (Contribution 4): lazy admission, O(log n)
// restoration, no data loss.
//
// Sweep n; measure the rounds a single join and a single leave take to
// restore the topology, verify the stored-element count is conserved, and
// run a churn storm with live heap traffic to confirm semantics survive.
#include <cmath>
#include <optional>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

int main(int argc, char** argv) {
  bench::init("churn", argc, argv);
  bench::header(
      "E12  churn: join/leave restoration",
      "Claim (Contribution 4): membership changes restore the topology in "
      "O(log n) rounds w.h.p.\nwithout losing data. Shape: join/leave "
      "rounds ~log n; element counts conserved.");

  bench::Table table({"n", "join_rounds", "leave_rounds", "elems_before",
                      "elems_after", "conserved"});
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    if (bench::skip_n(n)) continue;
    skeap::SkeapSystem sys(
        {.num_nodes = n, .num_priorities = 3, .seed = 400 + n});
    Rng rng(3 + n);
    for (NodeId v = 0; v < n; ++v) {
      for (int i = 0; i < 5; ++i) sys.insert(v, rng.range(1, 3));
    }
    sys.run_batch();

    auto count_elems = [&] {
      std::size_t total = 0;
      for (NodeId v : sys.active_nodes()) {
        total += sys.node(v).dht().stored_count();
      }
      return total;
    };
    const std::size_t before = count_elems();

    (void)sys.net().metrics().take();
    sys.join_node();
    const auto join_rounds = sys.net().metrics().take().rounds;

    // Leave a non-anchor node.
    NodeId victim = kNoNode;
    for (NodeId v : sys.active_nodes()) {
      if (v != sys.anchor()) {
        victim = v;
        break;
      }
    }
    (void)sys.net().metrics().take();
    sys.leave_node(victim);
    const auto leave_rounds = sys.net().metrics().take().rounds;

    const std::size_t after = count_elems();
    table.row({static_cast<double>(n), static_cast<double>(join_rounds),
               static_cast<double>(leave_rounds),
               static_cast<double>(before), static_cast<double>(after),
               before == after ? 1.0 : 0.0});
  }

  // Churn storm with live traffic: semantics must hold end to end.
  std::printf("\n-- churn storm (n = 32, 12 membership changes under "
              "traffic) --\n");
  skeap::SkeapSystem sys({.num_nodes = 32, .num_priorities = 3, .seed = 51});
  Rng rng(52);
  for (int step = 0; step < 12; ++step) {
    for (NodeId v : sys.active_nodes()) {
      if (rng.flip(0.6)) sys.insert(v, rng.range(1, 3));
      if (rng.flip(0.3)) sys.delete_min(v);
    }
    sys.run_batch();
    if (step % 2 == 0) {
      sys.join_node();
    } else {
      std::vector<NodeId> nodes(sys.active_nodes().begin(),
                                sys.active_nodes().end());
      sys.leave_node(nodes[rng.below(nodes.size())]);
    }
  }
  sys.run_batch();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  std::printf("sequential consistency across the storm: %s\n",
              check.ok ? "OK" : check.error.c_str());
  return check.ok ? 0 : 1;
}
