// Shared helpers for the experiment binaries: aligned table printing and
// metric extraction. Every bench prints the rows of the experiment it
// regenerates (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the measured results).
//
// Every table bench accepts three optional flags (parsed by bench::init):
//   --json [path]   mirror every table row into BENCH_<name>.json. `path`
//                   may be a directory (default ".") or an explicit *.json
//                   file. The file is rewritten after each row, so partial
//                   results survive a timeout. Stdout is unaffected.
//   --max-n <v>     skip sweep points with n > v (CI smoke runs).
//   --trace <path>  capture the first traced execution (the first
//                   repetition that calls maybe_start_trace) as a Perfetto
//                   JSON trace at <path>; open it at ui.perfetto.dev. Also
//                   feeds per-phase/per-epoch breakdowns into the --json
//                   report section.
//   --telemetry [path]        stream continuous-telemetry samples (one
//                   ndjson line per sample, the format sks_top and
//                   trace_inspect --timeline read) into
//                   TELEMETRY_<name>.ndjson, plus an OpenMetrics text
//                   exposition next to it (*.om). `path` may be a
//                   directory (default ".") or an explicit *.ndjson file.
//   --telemetry-interval R    sample every R rounds (default 32).
//   --repeat <k>    repeat each timed sweep point k times and report the
//                   median-by-wall-time repetition (steadier wall-clock
//                   columns; round counts are deterministic per point and
//                   identical across repetitions).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/openmetrics.hpp"
#include "obs/sampler.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "trace/perfetto.hpp"
#include "trace/summary.hpp"

namespace sks::bench {

/// Resolve a --json argument (directory or explicit file) to the output
/// file path for bench `name`.
inline std::string json_output_path(const std::string& name,
                                    const std::string& arg) {
  std::string path = arg.empty() ? std::string(".") : arg;
  if (path.size() >= 5 &&
      path.compare(path.size() - 5, 5, ".json") == 0) {
    return path;
  }
  return path + "/BENCH_" + name + ".json";
}

/// Process-wide JSON mirror of every Table. Disabled unless the binary was
/// started with --json; rewrites the target file after each row so partial
/// results are never lost.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void configure(std::string name, const std::string& path_arg) {
    name_ = std::move(name);
    path_ = json_output_path(name_, path_arg);
    enabled_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  bool enabled() const { return enabled_; }

  std::size_t begin_table(std::vector<std::string> columns) {
    tables_.push_back({std::move(columns), {}});
    write();
    return tables_.size() - 1;
  }

  void add_row(std::size_t table, std::vector<double> values) {
    tables_[table].rows.push_back(std::move(values));
    write();
  }

  /// Fold a measurement window's distributions into the report section
  /// (histograms merge across windows; maxima accumulate).
  void merge_window(const sim::MetricsSnapshot& snap) {
    report_.message_bits.merge(snap.message_bits_hist);
    report_.congestion.merge(snap.congestion_hist);
    report_.max_message_bits =
        std::max(report_.max_message_bits, snap.max_message_bits);
    report_.max_congestion =
        std::max(report_.max_congestion, snap.max_congestion);
    report_.wire_messages += snap.wire_messages;
    report_.wire_body_bits += snap.wire_body_bits;
    report_.wire_frame_bits += snap.wire_frame_bits;
    for (const auto& [t, v] : snap.wire_messages_by_type) {
      report_.wire_messages_by_type[t] += v;
    }
    for (const auto& [t, v] : snap.wire_bits_by_type) {
      report_.wire_bits_by_type[t] += v;
    }
    for (const auto& [t, v] : snap.wire_max_bits_by_type) {
      auto& m = report_.wire_max_bits_by_type[t];
      m = std::max(m, v);
    }
    for (const auto& [t, v] : snap.wire_accounted_bits_by_type) {
      report_.wire_accounted_bits_by_type[t] += v;
    }
    for (const auto& [t, v] : snap.wire_envelope_bits_by_type) {
      report_.wire_envelope_bits_by_type[t] += v;
    }
    ++report_.windows;
    write();
  }

  /// Attach the traced execution's per-phase/per-epoch breakdown.
  void set_trace_summary(trace::TraceSummary summary) {
    report_.summary = std::move(summary);
    report_.has_summary = true;
    write();
  }

 private:
  struct TableData {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;
  };

  struct ReportData {
    sim::Log2Histogram message_bits;
    sim::Log2Histogram congestion;
    std::uint64_t max_message_bits = 0;
    std::uint64_t max_congestion = 0;
    std::uint64_t windows = 0;
    // Wire-mode accounting, accumulated across windows (empty off-wire).
    std::uint64_t wire_messages = 0;
    std::uint64_t wire_body_bits = 0;
    std::uint64_t wire_frame_bits = 0;
    std::map<std::string, std::uint64_t> wire_messages_by_type;
    std::map<std::string, std::uint64_t> wire_bits_by_type;
    std::map<std::string, std::uint64_t> wire_max_bits_by_type;
    std::map<std::string, std::uint64_t> wire_accounted_bits_by_type;
    std::map<std::string, std::uint64_t> wire_envelope_bits_by_type;
    trace::TraceSummary summary;
    bool has_summary = false;
  };

  static void write_escaped(std::FILE* f, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') std::fprintf(f, "\\%c", c);
      else std::fputc(c, f);
    }
  }

  static void write_number(std::FILE* f, double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
        v > -1e15) {
      std::fprintf(f, "%lld", static_cast<long long>(v));
    } else {
      std::fprintf(f, "%.6g", v);
    }
  }

  static void write_histogram(std::FILE* f, const char* key,
                              const sim::Log2Histogram& h,
                              std::uint64_t max_value) {
    std::fprintf(f,
                 "    \"%s\": {\"count\": %llu, \"p50\": %llu, "
                 "\"p90\": %llu, \"p99\": %llu, \"max\": %llu, "
                 "\"buckets\": [",
                 key, static_cast<unsigned long long>(h.total()),
                 static_cast<unsigned long long>(h.quantile(0.50)),
                 static_cast<unsigned long long>(h.quantile(0.90)),
                 static_cast<unsigned long long>(h.quantile(0.99)),
                 static_cast<unsigned long long>(max_value));
    bool first = true;
    for (std::size_t b = 0; b < sim::Log2Histogram::kBuckets; ++b) {
      const std::uint64_t c = h.buckets()[b];
      if (c == 0) continue;
      std::fprintf(f, "%s[%llu, %llu]", first ? "" : ", ",
                   static_cast<unsigned long long>(
                       sim::Log2Histogram::bucket_upper(b)),
                   static_cast<unsigned long long>(c));
      first = false;
    }
    std::fprintf(f, "]}");
  }

  void write_report(std::FILE* f) const {
    std::fprintf(f, ",\n  \"report\": {\n");
    write_histogram(f, "message_bits", report_.message_bits,
                    report_.max_message_bits);
    std::fprintf(f, ",\n");
    write_histogram(f, "congestion", report_.congestion,
                    report_.max_congestion);
    if (report_.wire_messages > 0) {
      // Measured-vs-accounted, per logical action: `wire_bits` is the
      // encoded body (frame tag and envelope headers excluded), directly
      // comparable to `accounted_bits` = sum of size_bits(). CI's
      // bench-smoke gate parses this section.
      std::fprintf(f,
                   ",\n    \"wire\": {\"messages\": %llu, "
                   "\"body_bits\": %llu, \"frame_bits\": %llu,\n"
                   "      \"actions\": [",
                   static_cast<unsigned long long>(report_.wire_messages),
                   static_cast<unsigned long long>(report_.wire_body_bits),
                   static_cast<unsigned long long>(report_.wire_frame_bits));
      bool first = true;
      for (const auto& [type, msgs] : report_.wire_messages_by_type) {
        std::fprintf(f, "%s\n        {\"action\": \"", first ? "" : ",");
        write_escaped(f, type);
        const auto find = [&](const std::map<std::string, std::uint64_t>& m) {
          const auto it = m.find(type);
          return it == m.end() ? std::uint64_t{0} : it->second;
        };
        std::fprintf(
            f,
            "\", \"messages\": %llu, \"wire_bits\": %llu, "
            "\"max_wire_bits\": %llu, \"accounted_bits\": %llu}",
            static_cast<unsigned long long>(msgs),
            static_cast<unsigned long long>(find(report_.wire_bits_by_type)),
            static_cast<unsigned long long>(
                find(report_.wire_max_bits_by_type)),
            static_cast<unsigned long long>(
                find(report_.wire_accounted_bits_by_type)));
        first = false;
      }
      std::fprintf(f, "%s],\n      \"envelopes\": [", first ? "" : "\n      ");
      first = true;
      for (const auto& [type, bits] : report_.wire_envelope_bits_by_type) {
        std::fprintf(f, "%s\n        {\"action\": \"", first ? "" : ",");
        write_escaped(f, type);
        std::fprintf(f, "\", \"header_bits\": %llu}",
                     static_cast<unsigned long long>(bits));
        first = false;
      }
      std::fprintf(f, "%s]\n    }", first ? "" : "\n      ");
    }
    if (report_.has_summary) {
      const trace::TraceSummary& s = report_.summary;
      std::fprintf(f,
                   ",\n    \"trace\": {\"nodes\": %llu, \"rounds\": %llu, "
                   "\"deliveries\": %llu, \"bits\": %llu,\n"
                   "      \"phases\": [",
                   static_cast<unsigned long long>(s.num_nodes),
                   static_cast<unsigned long long>(s.rounds),
                   static_cast<unsigned long long>(s.deliveries),
                   static_cast<unsigned long long>(s.total_bits));
      for (std::size_t i = 0; i < s.phases.size(); ++i) {
        const trace::PhaseSummary& p = s.phases[i];
        std::fprintf(f, "%s\n        {\"phase\": \"", i == 0 ? "" : ",");
        write_escaped(f, p.phase);
        std::fprintf(f,
                     "\", \"spans\": %llu, \"rounds\": %llu, "
                     "\"messages\": %llu, \"bits\": %llu, "
                     "\"max_congestion\": %llu}",
                     static_cast<unsigned long long>(p.spans),
                     static_cast<unsigned long long>(p.rounds),
                     static_cast<unsigned long long>(p.messages),
                     static_cast<unsigned long long>(p.bits),
                     static_cast<unsigned long long>(p.max_congestion));
      }
      std::fprintf(f, "%s],\n      \"epochs\": [",
                   s.phases.empty() ? "" : "\n      ");
      for (std::size_t i = 0; i < s.epochs.size(); ++i) {
        const trace::EpochSummary& e = s.epochs[i];
        std::fprintf(f,
                     "%s\n        {\"epoch\": %llu, \"rounds\": %llu, "
                     "\"messages\": %llu, \"bits\": %llu}",
                     i == 0 ? "" : ",",
                     static_cast<unsigned long long>(e.epoch),
                     static_cast<unsigned long long>(e.rounds),
                     static_cast<unsigned long long>(e.messages),
                     static_cast<unsigned long long>(e.bits));
      }
      std::fprintf(f, "%s]\n    }", s.epochs.empty() ? "" : "\n      ");
    }
    std::fprintf(f, "\n  }");
  }

  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\n  \"bench\": \"");
    write_escaped(f, name_);
    std::fprintf(f, "\",\n  \"wall_time_ms\": %.3f,\n  \"tables\": [",
                 wall_ms);
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      std::fprintf(f, "%s\n    {\n      \"columns\": [",
                   t == 0 ? "" : ",");
      const TableData& tbl = tables_[t];
      for (std::size_t c = 0; c < tbl.columns.size(); ++c) {
        std::fprintf(f, "%s\"", c == 0 ? "" : ", ");
        write_escaped(f, tbl.columns[c]);
        std::fprintf(f, "\"");
      }
      std::fprintf(f, "],\n      \"rows\": [");
      for (std::size_t r = 0; r < tbl.rows.size(); ++r) {
        std::fprintf(f, "%s\n        [", r == 0 ? "" : ",");
        for (std::size_t c = 0; c < tbl.rows[r].size(); ++c) {
          if (c != 0) std::fprintf(f, ", ");
          write_number(f, tbl.rows[r][c]);
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "%s]\n    }", tbl.rows.empty() ? "" : "\n      ");
    }
    std::fprintf(f, "%s]", tables_.empty() ? "" : "\n  ");
    if (report_.windows > 0 || report_.has_summary) write_report(f);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }

  bool enabled_ = false;
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_{};
  std::vector<TableData> tables_;
  ReportData report_;
};

inline std::size_t& max_n_limit() {
  static std::size_t limit = 0;  // 0 = unlimited
  return limit;
}

/// True when a sweep point exceeds the --max-n cap (CI smoke runs).
inline bool skip_n(std::size_t n) {
  return max_n_limit() != 0 && n > max_n_limit();
}

/// Perfetto output path of --trace ("" = tracing off).
inline std::string& trace_path() {
  static std::string path;
  return path;
}

/// Resolve a --telemetry argument (directory or explicit file) to the
/// ndjson stream path for bench `name`.
inline std::string telemetry_output_path(const std::string& name,
                                         const std::string& arg) {
  std::string path = arg.empty() ? std::string(".") : arg;
  if (path.size() >= 7 &&
      path.compare(path.size() - 7, 7, ".ndjson") == 0) {
    return path;
  }
  return path + "/TELEMETRY_" + name + ".ndjson";
}

/// Process-wide --telemetry configuration (off unless the flag was given).
struct TelemetryConfig {
  bool enabled = false;
  std::string name;          ///< bench name (default sample label)
  std::string path;          ///< ndjson stream target
  std::uint64_t interval = 32;  ///< sample every this many rounds
};

inline TelemetryConfig& telemetry() {
  static TelemetryConfig cfg;
  return cfg;
}

inline bool telemetry_enabled() { return telemetry().enabled; }

/// The shared ndjson stream all TelemetryScopes of this process append
/// to (one timeline file per bench run). nullptr when --telemetry is off.
inline std::ostream* telemetry_stream() {
  if (!telemetry().enabled) return nullptr;
  static std::ofstream file(telemetry().path, std::ios::trunc);
  return file ? &file : nullptr;
}

/// --repeat count (default 1).
inline int& repeat_count() {
  static int k = 1;
  return k;
}

/// Run `fn(rep)` repeat_count() times and return the repetition with the
/// median key (ties toward the earlier rep). `key` extracts the wall-time
/// measurement to order by. With --repeat 1 (the default) this is a plain
/// call, so wrapping a sweep point is free.
template <class Fn, class Key>
auto median_of_repeats(Fn fn, Key key) -> decltype(fn(0)) {
  const int k = std::max(1, repeat_count());
  using Result = decltype(fn(0));
  std::vector<Result> reps;
  reps.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) reps.push_back(fn(i));
  std::stable_sort(reps.begin(), reps.end(),
                   [&](const Result& a, const Result& b) {
                     return key(a) < key(b);
                   });
  return reps[(reps.size() - 1) / 2];
}

/// RAII wrapper a bench puts around one measured system: attaches an
/// obs::Sampler to the network when --telemetry is on (sampling every
/// --telemetry-interval rounds into the shared ndjson stream), cuts a
/// final sample and rewrites the OpenMetrics exposition on scope exit,
/// and detaches before the network dies. A no-op without --telemetry.
///
/// Declare it AFTER the system so it is destroyed first:
///   skeap::SkeapSystem sys(opts);
///   bench::TelemetryScope tel(sys.net(), "n=" + std::to_string(n));
class TelemetryScope {
 public:
  explicit TelemetryScope(sim::Network& net, std::string label = "") {
    if (!telemetry_enabled()) return;
    obs::Sampler::Options o;
    o.every_rounds = telemetry().interval;
    o.label = label.empty() ? telemetry().name : std::move(label);
    sampler_ = std::make_unique<obs::Sampler>(net, std::move(o),
                                              telemetry_stream());
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  ~TelemetryScope() { finish(); }

  /// Final sample + OpenMetrics rewrite + detach. Idempotent.
  void finish() {
    if (sampler_ == nullptr) return;
    sampler_->sample();  // flush the last partial interval
    write_openmetrics_file();
    sampler_.reset();    // detaches the round observer
  }

  /// The attached sampler (nullptr when --telemetry is off).
  obs::Sampler* sampler() { return sampler_.get(); }

 private:
  // TELEMETRY_<name>.ndjson -> TELEMETRY_<name>.om; rewritten per scope,
  // so the exposition reflects the most recent sweep point.
  void write_openmetrics_file() const {
    std::string path = telemetry().path;
    const std::string suffix = ".ndjson";
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      path.resize(path.size() - suffix.size());
    }
    path += ".om";
    std::ofstream om(path, std::ios::trunc);
    if (om) obs::write_openmetrics(om, *sampler_);
  }

  std::unique_ptr<obs::Sampler> sampler_;
};

/// Parse the shared bench flags. Call first thing in main().
inline void init(const std::string& name, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::string path;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      }
      JsonSink::instance().configure(name, path);
    } else if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n_limit() = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path() = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      std::string path;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      }
      telemetry().enabled = true;
      telemetry().name = name;
      telemetry().path = telemetry_output_path(name, path);
    } else if (std::strcmp(argv[i], "--telemetry-interval") == 0 &&
               i + 1 < argc) {
      const std::uint64_t r = std::strtoull(argv[++i], nullptr, 10);
      if (r > 0) telemetry().interval = r;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat_count() =
          std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--wire") == 0) {
      // Must run before the first Network is constructed (it is: init is
      // the first statement of every bench main). Equivalent to running
      // the binary under SKS_WIRE=1.
      setenv("SKS_WIRE", "1", 1);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Same timing constraint as --wire; equivalent to SKS_THREADS=N.
      setenv("SKS_THREADS", argv[++i], 1);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      // Same timing constraint as --wire; equivalent to SKS_SHARDS=S.
      setenv("SKS_SHARDS", argv[++i], 1);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: bench_%s [--json [path]] [--max-n N] [--trace path] "
          "[--telemetry [path]] [--telemetry-interval R] [--repeat k] "
          "[--wire] [--threads N] [--shards S]\n"
          "\n"
          "  --json [path]  mirror table rows (plus a report section with\n"
          "                 histogram quantiles and, with --trace, the\n"
          "                 per-phase breakdown) into BENCH_%s.json; path\n"
          "                 may be a directory or an explicit *.json file\n"
          "  --max-n N      skip sweep points with n > N (smoke runs)\n"
          "  --trace path   dump a Perfetto/chrome://tracing JSON trace of\n"
          "                 the first traced execution to `path`; open it\n"
          "                 at https://ui.perfetto.dev\n"
          "  --telemetry [path]\n"
          "                 stream live time-series samples (ndjson, one\n"
          "                 object per sample) into TELEMETRY_%s.ndjson\n"
          "                 plus an OpenMetrics exposition (*.om); view\n"
          "                 live with examples/sks_top or after the fact\n"
          "                 with trace_inspect --timeline\n"
          "  --telemetry-interval R\n"
          "                 sample every R rounds (default 32)\n"
          "  --repeat k     run each timed point k times, report the\n"
          "                 median-by-wall-time repetition\n"
          "  --wire         marshal every message through the byte-exact\n"
          "                 wire codec (encode -> bytes -> decode) and\n"
          "                 record measured encoded sizes alongside the\n"
          "                 accounted size_bits() (the --json wire section)\n"
          "  --threads N    worker threads for the round executor (default\n"
          "                 1 or SKS_THREADS; never changes results or the\n"
          "                 trace, only wall time)\n"
          "  --shards S     execution shards (default SKS_SHARDS or auto\n"
          "                 from n; rounded down to a power of two)\n",
          name.c_str(), name.c_str(), name.c_str());
      std::exit(0);
    }
  }
}

/// Arm the network's tracer for the first captured execution. Call right
/// before the execution a trace of which would be representative (the
/// first repetition of a sweep point); pair with maybe_finish_trace.
inline void maybe_start_trace(sim::Network& net) {
  if (trace_path().empty()) return;
  net.tracer().enable();
}

/// If this network's tracer was armed by maybe_start_trace, export the
/// capture (Perfetto JSON to --trace's path, the per-phase breakdown into
/// the --json report) and disarm tracing for the rest of the run.
inline void maybe_finish_trace(sim::Network& net) {
  if (trace_path().empty() || !net.tracer().enabled()) return;
  net.tracer().disable();
  const trace::Trace trace = net.take_trace();
  trace::write_perfetto_json(trace, trace_path());
  if (JsonSink::instance().enabled()) {
    JsonSink::instance().set_trace_summary(trace::summarize(trace));
  }
  std::printf("# trace: %zu events -> %s\n", trace.events.size(),
              trace_path().c_str());
  trace_path().clear();  // capture only the first execution
}

/// Fold a measurement window's histograms into the --json report section.
inline void report_window(const sim::MetricsSnapshot& snap) {
  if (JsonSink::instance().enabled()) {
    JsonSink::instance().merge_window(snap);
  }
}

inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    if (JsonSink::instance().enabled()) {
      sink_table_ = JsonSink::instance().begin_table(columns_);
    }
    for (const auto& c : columns_) std::printf("%-14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size(); ++i) std::printf("%-14s", "----");
    std::printf("\n");
  }

  void row(std::initializer_list<double> values) {
    std::size_t i = 0;
    for (double v : values) {
      if (v == static_cast<double>(static_cast<long long>(v)) &&
          v < 1e15 && v > -1e15) {
        std::printf("%-14lld", static_cast<long long>(v));
      } else {
        std::printf("%-14.2f", v);
      }
      ++i;
    }
    std::printf("\n");
    if (JsonSink::instance().enabled()) {
      JsonSink::instance().add_row(sink_table_,
                                   std::vector<double>(values));
    }
  }

 private:
  std::vector<std::string> columns_;
  std::size_t sink_table_ = 0;
};

/// Largest single message of a given payload-type prefix in the window.
inline std::uint64_t max_bits_of_type(const sim::MetricsSnapshot& snap,
                                      const std::string& prefix) {
  std::uint64_t best = 0;
  for (const auto& [type, bits] : snap.max_bits_by_type) {
    if (type.rfind(prefix, 0) == 0) best = std::max(best, bits);
  }
  return best;
}

}  // namespace sks::bench
