// Shared helpers for the experiment binaries: aligned table printing and
// metric extraction. Every bench prints the rows of the experiment it
// regenerates (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the measured results).
//
// Every table bench accepts two optional flags (parsed by bench::init):
//   --json [path]   mirror every table row into BENCH_<name>.json. `path`
//                   may be a directory (default ".") or an explicit *.json
//                   file. The file is rewritten after each row, so partial
//                   results survive a timeout. Stdout is unaffected.
//   --max-n <v>     skip sweep points with n > v (CI smoke runs).
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"

namespace sks::bench {

/// Resolve a --json argument (directory or explicit file) to the output
/// file path for bench `name`.
inline std::string json_output_path(const std::string& name,
                                    const std::string& arg) {
  std::string path = arg.empty() ? std::string(".") : arg;
  if (path.size() >= 5 &&
      path.compare(path.size() - 5, 5, ".json") == 0) {
    return path;
  }
  return path + "/BENCH_" + name + ".json";
}

/// Process-wide JSON mirror of every Table. Disabled unless the binary was
/// started with --json; rewrites the target file after each row so partial
/// results are never lost.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void configure(std::string name, const std::string& path_arg) {
    name_ = std::move(name);
    path_ = json_output_path(name_, path_arg);
    enabled_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  bool enabled() const { return enabled_; }

  std::size_t begin_table(std::vector<std::string> columns) {
    tables_.push_back({std::move(columns), {}});
    write();
    return tables_.size() - 1;
  }

  void add_row(std::size_t table, std::vector<double> values) {
    tables_[table].rows.push_back(std::move(values));
    write();
  }

 private:
  struct TableData {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;
  };

  static void write_escaped(std::FILE* f, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') std::fprintf(f, "\\%c", c);
      else std::fputc(c, f);
    }
  }

  static void write_number(std::FILE* f, double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
        v > -1e15) {
      std::fprintf(f, "%lld", static_cast<long long>(v));
    } else {
      std::fprintf(f, "%.6g", v);
    }
  }

  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\n  \"bench\": \"");
    write_escaped(f, name_);
    std::fprintf(f, "\",\n  \"wall_time_ms\": %.3f,\n  \"tables\": [",
                 wall_ms);
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      std::fprintf(f, "%s\n    {\n      \"columns\": [",
                   t == 0 ? "" : ",");
      const TableData& tbl = tables_[t];
      for (std::size_t c = 0; c < tbl.columns.size(); ++c) {
        std::fprintf(f, "%s\"", c == 0 ? "" : ", ");
        write_escaped(f, tbl.columns[c]);
        std::fprintf(f, "\"");
      }
      std::fprintf(f, "],\n      \"rows\": [");
      for (std::size_t r = 0; r < tbl.rows.size(); ++r) {
        std::fprintf(f, "%s\n        [", r == 0 ? "" : ",");
        for (std::size_t c = 0; c < tbl.rows[r].size(); ++c) {
          if (c != 0) std::fprintf(f, ", ");
          write_number(f, tbl.rows[r][c]);
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "%s]\n    }", tbl.rows.empty() ? "" : "\n      ");
    }
    std::fprintf(f, "%s]\n}\n", tables_.empty() ? "" : "\n  ");
    std::fclose(f);
  }

  bool enabled_ = false;
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_{};
  std::vector<TableData> tables_;
};

inline std::size_t& max_n_limit() {
  static std::size_t limit = 0;  // 0 = unlimited
  return limit;
}

/// True when a sweep point exceeds the --max-n cap (CI smoke runs).
inline bool skip_n(std::size_t n) {
  return max_n_limit() != 0 && n > max_n_limit();
}

/// Parse the shared bench flags. Call first thing in main().
inline void init(const std::string& name, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::string path;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      }
      JsonSink::instance().configure(name, path);
    } else if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n_limit() = std::strtoull(argv[++i], nullptr, 10);
    }
  }
}

inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    if (JsonSink::instance().enabled()) {
      sink_table_ = JsonSink::instance().begin_table(columns_);
    }
    for (const auto& c : columns_) std::printf("%-14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size(); ++i) std::printf("%-14s", "----");
    std::printf("\n");
  }

  void row(std::initializer_list<double> values) {
    std::size_t i = 0;
    for (double v : values) {
      if (v == static_cast<double>(static_cast<long long>(v)) &&
          v < 1e15 && v > -1e15) {
        std::printf("%-14lld", static_cast<long long>(v));
      } else {
        std::printf("%-14.2f", v);
      }
      ++i;
    }
    std::printf("\n");
    if (JsonSink::instance().enabled()) {
      JsonSink::instance().add_row(sink_table_,
                                   std::vector<double>(values));
    }
  }

 private:
  std::vector<std::string> columns_;
  std::size_t sink_table_ = 0;
};

/// Largest single message of a given payload-type prefix in the window.
inline std::uint64_t max_bits_of_type(const sim::MetricsSnapshot& snap,
                                      const std::string& prefix) {
  std::uint64_t best = 0;
  for (const auto& [type, bits] : snap.max_bits_by_type) {
    if (type.rfind(prefix, 0) == 0) best = std::max(best, bits);
  }
  return best;
}

}  // namespace sks::bench
