// Shared helpers for the experiment binaries: aligned table printing and
// metric extraction. Every bench prints the rows of the experiment it
// regenerates (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the measured results).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace sks::bench {

inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (const auto& c : columns_) std::printf("%-14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns_.size(); ++i) std::printf("%-14s", "----");
    std::printf("\n");
  }

  void row(std::initializer_list<double> values) {
    std::size_t i = 0;
    for (double v : values) {
      if (v == static_cast<double>(static_cast<long long>(v)) &&
          v < 1e15 && v > -1e15) {
        std::printf("%-14lld", static_cast<long long>(v));
      } else {
        std::printf("%-14.2f", v);
      }
      ++i;
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

/// Largest single message of a given payload-type prefix in the window.
inline std::uint64_t max_bits_of_type(const sim::MetricsSnapshot& snap,
                                      const std::string& prefix) {
  std::uint64_t best = 0;
  for (const auto& [type, bits] : snap.max_bits_by_type) {
    if (type.rfind(prefix, 0) == 0) best = std::max(best, bits);
  }
  return best;
}

}  // namespace sks::bench
