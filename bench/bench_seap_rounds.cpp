// E7 — Seap's Insert and DeleteMin phases finish in O(log n) rounds
// w.h.p. (Theorem 5.1(3), Lemma 5.3).
//
// Sweep n with a preloaded heap so the DeleteMin phase exercises KSelect;
// rounds per full cycle (Insert phase + DeleteMin phase) should grow
// logarithmically.
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "seap/seap_system.hpp"

using namespace sks;

int main(int argc, char** argv) {
  bench::init("seap_rounds", argc, argv);
  bench::header("E7  Seap rounds per cycle",
                "Claim (Thm 5.1.3): both global phases finish in O(log n) "
                "rounds w.h.p.\nShape: rounds/log2(n) roughly flat as n "
                "grows 32 -> 1024 (32x).");

  bench::Table table({"n", "heap_size", "rounds", "rounds/log2n"});
  for (std::size_t n : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    if (bench::skip_n(n)) continue;
    seap::SeapSystem sys({.num_nodes = n, .seed = 200 + n});
    bench::TelemetryScope tel(sys.net(),
                              "seap_rounds n=" + std::to_string(n));
    Rng rng(17 + n);
    // Preload ~10 elements per node.
    for (NodeId v = 0; v < n; ++v) {
      for (int i = 0; i < 10; ++i) sys.insert(v, rng.range(1, ~0ULL >> 16));
    }
    sys.run_cycle();

    std::uint64_t total = 0;
    constexpr int kCycles = 3;
    for (int c = 0; c < kCycles; ++c) {
      for (NodeId v = 0; v < n; ++v) {
        if (rng.flip(0.5)) sys.insert(v, rng.range(1, ~0ULL >> 16));
        if (rng.flip(0.5)) sys.delete_min(v);
      }
      if (c == 0) bench::maybe_start_trace(sys.net());
      total += sys.run_cycle();
      if (c == 0) bench::maybe_finish_trace(sys.net());
    }
    bench::report_window(sys.net().metrics().current());
    const double rounds = static_cast<double>(total) / kCycles;
    table.row({static_cast<double>(n),
               static_cast<double>(sys.anchor_node().anchor_heap_size()),
               rounds, rounds / std::log2(static_cast<double>(n))});
  }
  return 0;
}
