// E9 — fairness: each node stores m/n elements in expectation
// (Theorems 3.2(1)/5.1(1), Lemma 2.2(iv)).
//
// Bulk-insert m elements through each protocol and report the per-node
// occupancy distribution: mean should be m/n; max/mean bounded by a small
// factor (random consistent-hashing arcs give max ~ O(log n) * mean).
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct LoadStats {
  double mean = 0, stddev = 0;
  std::size_t min = 0, max = 0;
};

LoadStats stats_of(const std::vector<std::size_t>& loads) {
  LoadStats s;
  s.min = ~std::size_t{0};
  double sum = 0;
  for (auto l : loads) {
    sum += static_cast<double>(l);
    s.min = std::min(s.min, l);
    s.max = std::max(s.max, l);
  }
  s.mean = sum / static_cast<double>(loads.size());
  double var = 0;
  for (auto l : loads) {
    const double d = static_cast<double>(l) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(loads.size()));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fairness", argc, argv);
  bench::header("E9  fairness of element placement",
                "Claim (Lem 2.2(iv)): the DHT stores m elements uniformly — "
                "m/n per node in expectation.\nShape: mean = m/n; max/mean "
                "stays a small factor (consistent-hashing arc variance).");

  constexpr std::size_t kNodes = 128;
  constexpr std::size_t kPerNode = 50;
  constexpr std::size_t kTotal = kNodes * kPerNode;

  bench::Table table(
      {"protocol", "m/n", "mean", "stddev", "min", "max", "max/mean"});

  {
    skeap::SkeapSystem sys(
        {.num_nodes = kNodes, .num_priorities = 4, .seed = 21});
    Rng rng(5);
    for (std::size_t i = 0; i < kTotal; ++i) {
      sys.insert(static_cast<NodeId>(i % kNodes), rng.range(1, 4));
    }
    sys.run_batch();
    std::vector<std::size_t> loads;
    for (NodeId v = 0; v < kNodes; ++v) {
      loads.push_back(sys.node(v).dht().stored_count());
    }
    const auto s = stats_of(loads);
    std::printf("Skeap:\n");
    table.row({0, static_cast<double>(kPerNode), s.mean, s.stddev,
               static_cast<double>(s.min), static_cast<double>(s.max),
               static_cast<double>(s.max) / s.mean});
  }
  {
    seap::SeapSystem sys({.num_nodes = kNodes, .seed = 22});
    Rng rng(6);
    for (std::size_t i = 0; i < kTotal; ++i) {
      sys.insert(static_cast<NodeId>(i % kNodes), rng.range(1, ~0ULL >> 16));
    }
    sys.run_cycle();
    std::vector<std::size_t> loads;
    for (NodeId v = 0; v < kNodes; ++v) {
      loads.push_back(sys.node(v).dht().stored_count());
    }
    const auto s = stats_of(loads);
    std::printf("Seap:\n");
    table.row({1, static_cast<double>(kPerNode), s.mean, s.stddev,
               static_cast<double>(s.min), static_cast<double>(s.max),
               static_cast<double>(s.max) / s.mean});
  }
  return 0;
}
