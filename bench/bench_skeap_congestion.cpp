// E2 — Skeap congestion is Õ(Λ) (Theorem 3.2(4), Lemma 3.7).
//
// Fix n, sweep the injection rate Λ (ops buffered per node per batch).
// The maximum number of messages any node handles in one round should
// scale (poly-logarithmically) with Λ but stay independent of where the
// traffic originates — no bottleneck node.
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

int main(int argc, char** argv) {
  bench::init("skeap_congestion", argc, argv);
  bench::header("E2  Skeap congestion vs injection rate",
                "Claim (Thm 3.2.4): congestion is at most O~(Lambda).\n"
                "Shape: max per-node per-round messages grow ~linearly in "
                "Lambda at fixed n = 256; congestion/Lambda flat.");

  constexpr std::size_t kNodes = 256;
  bench::Table table(
      {"Lambda", "ops/batch", "congestion", "congest/Lam"});
  for (std::uint64_t lambda : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    skeap::SkeapSystem sys(
        {.num_nodes = kNodes, .num_priorities = 4, .seed = 5});
    Rng rng(11 + lambda);
    // Warm up one batch so the heap is non-trivial.
    for (NodeId v = 0; v < kNodes; ++v) sys.insert(v, rng.range(1, 4));
    sys.run_batch();
    (void)sys.net().metrics().take();

    std::uint64_t ops = 0;
    for (NodeId v = 0; v < kNodes; ++v) {
      for (std::uint64_t i = 0; i < lambda; ++i) {
        if (rng.flip(0.5)) {
          sys.insert(v, rng.range(1, 4));
        } else {
          sys.delete_min(v);
        }
        ++ops;
      }
    }
    bench::maybe_start_trace(sys.net());
    sys.run_batch();
    bench::maybe_finish_trace(sys.net());
    const auto snap = sys.net().metrics().take();
    bench::report_window(snap);
    table.row({static_cast<double>(lambda), static_cast<double>(ops),
               static_cast<double>(snap.max_congestion),
               static_cast<double>(snap.max_congestion) /
                   static_cast<double>(lambda)});
  }
  return 0;
}
