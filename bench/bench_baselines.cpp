// E10 — Skeap/Seap against the two baselines the paper's introduction
// argues against: a centralized coordinator heap and an unbatched
// tree-routing heap (the "batching off" ablation).
//
// Two sweeps:
//  (1) congestion vs n at Λ = 4: the coordinator/anchor handles every op
//      itself (grows ~n·Λ), while batched protocols stay Õ(Λ);
//  (2) rounds to complete the same workload: centralized wins on latency
//      at tiny n (one hop!), Skeap wins on *scalability* — the crossover
//      the paper's scalability argument predicts.
#include "baselines/centralized.hpp"
#include "baselines/nobatch.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct Outcome {
  std::uint64_t congestion = 0;
  std::uint64_t rounds = 0;
};

template <class IssueFn, class RunFn, class NetFn>
Outcome drive(std::size_t n, std::uint64_t lambda, std::uint64_t seed,
              IssueFn issue, RunFn run, NetFn net) {
  Rng rng(seed);
  (void)net().metrics().take();
  Outcome out;
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < lambda; ++i) {
      issue(v, rng.flip(0.5), rng.range(1, 4));
    }
  }
  out.rounds = run();
  out.congestion = net().metrics().take().max_congestion;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("baselines", argc, argv);
  bench::header(
      "E10  Skeap/Seap vs centralized vs unbatched",
      "The motivation of Section 1: batching over the aggregation tree "
      "removes the serialization bottleneck.\nShape: coordinator/anchor "
      "congestion grows ~n*Lambda for the baselines but stays ~Lambda for "
      "Skeap/Seap.");

  constexpr std::uint64_t kLambda = 4;
  bench::Table table({"n", "central_cg", "nobatch_cg", "skeap_cg", "seap_cg",
                      "skeap_rounds", "central_rnds"});
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    if (bench::skip_n(n)) continue;
    baselines::CentralizedSystem central({.num_nodes = n, .seed = 3});
    const auto c = drive(
        n, kLambda, 100 + n,
        [&](NodeId v, bool ins, Priority p) {
          if (ins) {
            central.insert(v, p);
          } else {
            central.delete_min(v);
          }
        },
        [&] { return central.run(); }, [&]() -> sim::Network& {
          return central.net();
        });

    baselines::NoBatchSystem nobatch(
        {.num_nodes = n, .num_priorities = 4, .seed = 3});
    const auto nb = drive(
        n, kLambda, 100 + n,
        [&](NodeId v, bool ins, Priority p) {
          if (ins) {
            nobatch.insert(v, p);
          } else {
            nobatch.delete_min(v);
          }
        },
        [&] { return nobatch.run(); }, [&]() -> sim::Network& {
          return nobatch.net();
        });

    skeap::SkeapSystem sk({.num_nodes = n, .num_priorities = 4, .seed = 3});
    const auto s = drive(
        n, kLambda, 100 + n,
        [&](NodeId v, bool ins, Priority p) {
          if (ins) {
            sk.insert(v, p);
          } else {
            sk.delete_min(v);
          }
        },
        [&] { return sk.run_batch(); }, [&]() -> sim::Network& {
          return sk.net();
        });

    seap::SeapSystem se({.num_nodes = n, .seed = 3});
    const auto sp = drive(
        n, kLambda, 100 + n,
        [&](NodeId v, bool ins, Priority p) {
          if (ins) {
            se.insert(v, p * 1000);
          } else {
            se.delete_min(v);
          }
        },
        [&] { return se.run_cycle(); }, [&]() -> sim::Network& {
          return se.net();
        });

    table.row({static_cast<double>(n), static_cast<double>(c.congestion),
               static_cast<double>(nb.congestion),
               static_cast<double>(s.congestion),
               static_cast<double>(sp.congestion),
               static_cast<double>(s.rounds),
               static_cast<double>(c.rounds)});
  }
  std::printf(
      "\nNote: the centralized heap finishes in O(1) rounds — its cost is\n"
      "the coordinator's load, which grows with n*Lambda and in a real\n"
      "deployment becomes the throughput ceiling the paper's batching "
      "avoids.\n");
  return 0;
}
