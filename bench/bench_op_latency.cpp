// E13 (extension) — per-operation latency in simulated rounds.
//
// The paper reports batch round complexity; downstream users also care
// about the latency an individual DeleteMin observes (issue → callback).
// Batched protocols trade per-op latency for throughput: the centralized
// heap answers in ~2 rounds but melts under load (E10); Skeap/Seap answer
// in O(log n) regardless of how many ops share the batch.
//
// With --arrival-rate R an open-loop leg runs after the closed-loop
// tables: DeleteMins arrive as a Poisson process (mean R per node per
// epoch, dedicated rng stream) instead of one synchronized full batch,
// so the latency distribution reflects load the issuers do not pace to
// the service rate — the regime E20 (bench_overload) stresses.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "baselines/centralized.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "seap/seap_system.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct Latency {
  double mean = 0;
  std::uint64_t p50 = 0, p99 = 0, max = 0;
};

Latency summarize(std::vector<std::uint64_t> samples) {
  Latency out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (auto s : samples) sum += static_cast<double>(s);
  out.mean = sum / static_cast<double>(samples.size());
  out.p50 = samples[samples.size() / 2];
  out.p99 = samples[samples.size() * 99 / 100];
  out.max = samples.back();
  return out;
}

/// Knuth Poisson sampler (same scheme as bench_overload); lambda stays
/// small enough that exp(-lambda) is comfortably representable.
std::uint64_t poisson(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double p = 1.0;
  std::uint64_t k = 0;
  do {
    ++k;
    p *= rng.unit();
  } while (p > limit);
  return k - 1;
}

/// Open-loop Skeap leg: Poisson DeleteMin arrivals at `rate` per node
/// per epoch against a prefilled heap, latency measured per op from its
/// issue round to its callback round.
void run_open_loop(double rate, bench::Table& table) {
  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kEpochs = 8;
  skeap::SkeapSystem sys(
      {.num_nodes = kNodes, .num_priorities = 4, .seed = 7});
  Rng fill(8);
  // Prefill well past the expected demand so no delete returns ⊥.
  const std::size_t per_node =
      2 * static_cast<std::size_t>(std::ceil(rate * kEpochs)) + 1;
  for (std::size_t i = 0; i < per_node; ++i) {
    for (NodeId v = 0; v < kNodes; ++v) sys.insert(v, fill.range(1, 4));
  }
  sys.run_batch();

  Rng arrivals(9);  // dedicated arrival stream
  std::vector<std::uint64_t> lat;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const std::uint64_t issued_at = sys.net().round();
    for (NodeId v = 0; v < kNodes; ++v) {
      const std::uint64_t k = poisson(arrivals, rate);
      for (std::uint64_t i = 0; i < k; ++i) {
        sys.delete_min(v,
                       [&lat, &sys, issued_at](std::optional<Element>) {
                         lat.push_back(sys.net().round() - issued_at);
                       });
      }
    }
    sys.run_batch();
  }
  const auto s = summarize(std::move(lat));
  table.row({rate, s.mean, static_cast<double>(s.p50),
             static_cast<double>(s.p99), static_cast<double>(s.max)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("op_latency", argc, argv);
  bench::header(
      "E13  per-op DeleteMin latency (extension experiment)",
      "Rounds from issuing a DeleteMin to its callback, under a full "
      "batch's worth of concurrent ops.\nCentralized: ~2 rounds but "
      "bottlenecked (see E10); Skeap/Seap: O(log n) shared by the whole "
      "batch.");

  constexpr std::size_t kNodes = 256;
  bench::Table table({"protocol", "mean", "p50", "p99", "max"});

  {
    skeap::SkeapSystem sys(
        {.num_nodes = kNodes, .num_priorities = 4, .seed = 1});
    Rng rng(2);
    for (NodeId v = 0; v < kNodes; ++v) sys.insert(v, rng.range(1, 4));
    sys.run_batch();
    const std::uint64_t start = sys.net().round();
    std::vector<std::uint64_t> lat;
    for (NodeId v = 0; v < kNodes; ++v) {
      sys.delete_min(v, [&lat, &sys, start](std::optional<Element>) {
        lat.push_back(sys.net().round() - start);
      });
    }
    sys.run_batch();
    const auto s = summarize(std::move(lat));
    std::printf("Skeap:\n");
    table.row({0, s.mean, static_cast<double>(s.p50),
               static_cast<double>(s.p99), static_cast<double>(s.max)});
  }
  {
    seap::SeapSystem sys({.num_nodes = kNodes, .seed = 3});
    Rng rng(4);
    for (NodeId v = 0; v < kNodes; ++v) {
      sys.insert(v, rng.range(1, ~0ULL >> 16));
    }
    sys.run_cycle();
    const std::uint64_t start = sys.net().round();
    std::vector<std::uint64_t> lat;
    for (NodeId v = 0; v < kNodes; ++v) {
      sys.delete_min(v, [&lat, &sys, start](std::optional<Element>) {
        lat.push_back(sys.net().round() - start);
      });
    }
    sys.run_cycle();
    const auto s = summarize(std::move(lat));
    std::printf("Seap:\n");
    table.row({1, s.mean, static_cast<double>(s.p50),
               static_cast<double>(s.p99), static_cast<double>(s.max)});
  }
  {
    baselines::CentralizedSystem sys({.num_nodes = kNodes, .seed = 5});
    Rng rng(6);
    for (NodeId v = 0; v < kNodes; ++v) sys.insert(v, rng.range(1, 4));
    sys.run();
    const std::uint64_t start = sys.net().round();
    std::vector<std::uint64_t> lat;
    for (NodeId v = 0; v < kNodes; ++v) {
      sys.delete_min(v, [&lat, &sys, start](std::optional<Element>) {
        lat.push_back(sys.net().round() - start);
      });
    }
    sys.run();
    const auto s = summarize(std::move(lat));
    std::printf("Centralized:\n");
    table.row({2, s.mean, static_cast<double>(s.p50),
               static_cast<double>(s.p99), static_cast<double>(s.max)});
  }

  double arrival_rate = 0.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--arrival-rate") {
      arrival_rate = std::strtod(argv[i + 1], nullptr);
    }
  }
  if (arrival_rate > 0.0) {
    std::printf("\nSkeap open-loop (Poisson arrivals, mean %.2f "
                "DeleteMins per node per epoch):\n",
                arrival_rate);
    bench::Table open({"rate", "mean", "p50", "p99", "max"});
    run_open_loop(arrival_rate, open);
  }
  return 0;
}
