// E14 — fault tolerance: the cost of surviving a lossy channel.
//
// Two sweeps over a fixed Skeap workload (n nodes, one insert batch plus
// one delete batch per node subset):
//
//  1. Loss sweep: drop rate 0% .. 20% with the reliable transport on.
//     Reports rounds-to-completion, raw channel messages, drops and
//     retransmissions, and the overhead relative to the fault-free run —
//     the price of exactly-once delivery under loss.
//  2. Disabled-substrate overhead: the same workload with faults compiled
//     in but inactive, against the drop=0 reliable run, isolating the
//     transport's bookkeeping cost (sequence numbers + acks).
//
// Semantics are revalidated at every sweep point: the batch must finish
// and the trace checker must accept it, so a row in this table is also a
// liveness+safety witness at that loss rate.
//
// With --corrupt a third sweep runs (E19): the same workload in wire mode
// against a bit-flipping / truncating / garbage-injecting channel. Every
// corrupted frame must be rejected by the CRC trailer and recovered by
// retransmission — the corrupt_dlvd column counts integrity escapes and
// the CI gate asserts it is zero at every rate.
#include <optional>
#include <string_view>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/semantics.hpp"
#include "skeap/skeap_system.hpp"

using namespace sks;

namespace {

struct RunResult {
  std::uint64_t rounds = 0;
  sim::MetricsSnapshot snap;
  bool ok = false;
};

RunResult run_workload(std::size_t n, double drop, bool reliable,
                       std::uint64_t seed) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = n;
  opts.num_priorities = 3;
  opts.seed = seed;
  opts.faults.drop_prob = drop;
  opts.reliable.enabled = reliable;
  skeap::SkeapSystem sys(opts);
  bench::TelemetryScope tel(
      sys.net(), "faults drop=" + std::to_string(drop) +
                     (reliable ? " reliable" : " baseline"));

  RunResult r;
  for (NodeId v = 0; v < n; ++v) sys.insert(v, 1 + v % 3);
  r.rounds += sys.run_batch();
  std::size_t matched = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v % 2 != 0) continue;
    sys.delete_min(v,
                   [&](std::optional<Element> x) { matched += x ? 1u : 0u; });
  }
  r.rounds += sys.run_batch();
  r.snap = sys.net().metrics().current();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = check.ok && matched == n / 2;
  return r;
}

/// E19 leg: the E14 workload in wire mode behind a corrupting channel
/// (bit flips at `corrupt`, truncation and garbage frames at a quarter of
/// it), reliable transport on. Exactly-once must hold at every rate.
RunResult run_corrupt_workload(std::size_t n, double corrupt,
                               std::uint64_t seed) {
  skeap::SkeapSystem::Options opts;
  opts.num_nodes = n;
  opts.num_priorities = 3;
  opts.seed = seed;
  opts.wire = true;  // corruption mutates frame bytes
  opts.faults.corrupt_prob = corrupt;
  opts.faults.truncate_prob = corrupt / 4.0;
  opts.faults.garbage_prob = corrupt / 4.0;
  opts.reliable.enabled = true;
  skeap::SkeapSystem sys(opts);
  bench::TelemetryScope tel(sys.net(),
                            "faults corrupt=" + std::to_string(corrupt));

  RunResult r;
  for (NodeId v = 0; v < n; ++v) sys.insert(v, 1 + v % 3);
  r.rounds += sys.run_batch();
  std::size_t matched = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v % 2 != 0) continue;
    sys.delete_min(v,
                   [&](std::optional<Element> x) { matched += x ? 1u : 0u; });
  }
  r.rounds += sys.run_batch();
  r.snap = sys.net().metrics().current();
  const auto check = core::check_skeap_trace(sys.gather_trace());
  r.ok = check.ok && matched == n / 2;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("faults", argc, argv);
  bench::header(
      "E14  fault tolerance: loss sweep + substrate overhead",
      "Claim (robustness): with the reliable transport enabled the batch "
      "protocol completes with\nexactly-once semantics at every loss rate; "
      "rounds and retransmissions grow smoothly with the\ndrop "
      "probability, and the disabled substrate costs nothing.");

  constexpr std::size_t kNodes = 16;
  constexpr std::uint64_t kSeed = 9001;

  const RunResult baseline = run_workload(kNodes, 0.0, false, kSeed);
  std::printf("fault-free baseline (n=%zu): %llu rounds, %llu messages, "
              "semantics %s\n\n",
              kNodes, static_cast<unsigned long long>(baseline.rounds),
              static_cast<unsigned long long>(baseline.snap.total_messages),
              baseline.ok ? "OK" : "VIOLATED");

  bench::Table table({"drop_pct", "rounds", "messages", "dropped",
                      "retransmit", "dup_suppr", "round_overhead",
                      "msg_overhead", "ok"});
  bool all_ok = baseline.ok;
  for (const double drop : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    const RunResult r = run_workload(kNodes, drop, true, kSeed);
    all_ok = all_ok && r.ok;
    bench::report_window(r.snap);
    const double round_overhead =
        static_cast<double>(r.rounds) /
        static_cast<double>(baseline.rounds ? baseline.rounds : 1);
    const double msg_overhead =
        static_cast<double>(r.snap.total_messages) /
        static_cast<double>(baseline.snap.total_messages
                                ? baseline.snap.total_messages
                                : 1);
    table.row({drop * 100.0, static_cast<double>(r.rounds),
               static_cast<double>(r.snap.total_messages),
               static_cast<double>(r.snap.dropped),
               static_cast<double>(r.snap.retransmitted),
               static_cast<double>(r.snap.dup_suppressed), round_overhead,
               msg_overhead, r.ok ? 1.0 : 0.0});
  }

  // Inactive substrate: identical schedule, identical message count.
  std::printf("\n-- disabled-substrate check (faults compiled in, plan "
              "all-zero, reliable off) --\n");
  const RunResult inactive = run_workload(kNodes, 0.0, false, kSeed);
  const bool identical =
      inactive.rounds == baseline.rounds &&
      inactive.snap.total_messages == baseline.snap.total_messages &&
      inactive.snap.total_bits == baseline.snap.total_bits;
  std::printf("inactive plan replays the baseline byte-for-byte: %s\n",
              identical ? "OK" : "MISMATCH");
  all_ok = all_ok && identical && inactive.ok;

  // E19 — corruption sweep (opt-in so the E14 legs stay cheap by
  // default; CI runs with --corrupt and gates corrupt_dlvd == 0).
  bool corrupt_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--corrupt") corrupt_sweep = true;
  }
  if (corrupt_sweep) {
    std::printf("\n");
    bench::header(
        "E19  silent-failure hardening: corruption sweep (wire mode)",
        "Claim (integrity): every channel-mutated frame is rejected by "
        "the CRC32C trailer and\nrecovered by retransmission — zero "
        "corruptions reach a decoder (corrupt_dlvd column) and\nexactly-"
        "once semantics hold at every corruption rate.");
    const RunResult wire_base = run_corrupt_workload(kNodes, 0.0, kSeed);
    std::printf("wire-mode fault-free baseline (n=%zu): %llu rounds, "
                "%llu messages, semantics %s\n\n",
                kNodes, static_cast<unsigned long long>(wire_base.rounds),
                static_cast<unsigned long long>(
                    wire_base.snap.total_messages),
                wire_base.ok ? "OK" : "VIOLATED");
    all_ok = all_ok && wire_base.ok;
    bench::Table ctable({"corrupt_pct", "rounds", "messages", "corrupted",
                         "corrupt_dlvd", "retransmit", "quarantined",
                         "round_overhead", "ok"});
    for (const double c : {0.01, 0.05, 0.10}) {
      const RunResult r = run_corrupt_workload(kNodes, c, kSeed);
      all_ok = all_ok && r.ok && r.snap.corrupt_delivered == 0;
      bench::report_window(r.snap);
      const double round_overhead =
          static_cast<double>(r.rounds) /
          static_cast<double>(wire_base.rounds ? wire_base.rounds : 1);
      ctable.row({c * 100.0, static_cast<double>(r.rounds),
                  static_cast<double>(r.snap.total_messages),
                  static_cast<double>(r.snap.corrupted),
                  static_cast<double>(r.snap.corrupt_delivered),
                  static_cast<double>(r.snap.retransmitted),
                  static_cast<double>(r.snap.quarantined), round_overhead,
                  r.ok ? 1.0 : 0.0});
    }
  }
  return all_ok ? 0 : 1;
}
