// Micro-benchmarks (google-benchmark) of the primitives everything else
// is built on: hashing, interval carving, batch combination, topology
// construction, and the simulator's message loop. Wall-clock numbers —
// useful for spotting regressions in the substrate, not part of the
// paper's round-complexity claims.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/hash.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"
#include "overlay/topology.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"
#include "skeap/batch.hpp"

namespace sks {
namespace {

void BM_HashPoint(benchmark::State& state) {
  HashFunction h(42);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.point({1, x++, 7}));
  }
}
BENCHMARK(BM_HashPoint);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_SpanListCarve(benchmark::State& state) {
  const auto spans = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SpanList sl;
    for (std::size_t i = 0; i < spans; ++i) {
      sl.push_back(i % 4 + 1, Interval{i * 20 + 1, i * 20 + 10});
    }
    state.ResumeTiming();
    while (sl.total() > 0) {
      benchmark::DoNotOptimize(sl.take_front(3));
    }
  }
}
BENCHMARK(BM_SpanListCarve)->Arg(16)->Arg(256);

void BM_BatchCombine(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  skeap::Batch a(4), b(4);
  for (std::size_t i = 0; i < entries; ++i) {
    a.record_insert(1 + i % 4);
    a.record_delete();
    b.record_insert(1 + (i + 1) % 4);
    b.record_delete();
  }
  for (auto _ : state) {
    skeap::Batch combined = a;
    combined.combine(b);
    benchmark::DoNotOptimize(combined.total_ops());
  }
}
BENCHMARK(BM_BatchCombine)->Arg(8)->Arg(128);

void BM_BuildTopology(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  HashFunction h(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_topology(n, h));
  }
}
BENCHMARK(BM_BuildTopology)->Arg(64)->Arg(1024);

struct NullPayload final : sim::Action<NullPayload> {
  static constexpr const char* kActionName = "null";
  std::uint64_t size_bits() const override { return 8; }

  void encode(sks::wire::WireWriter&) const override {}
  static sim::Owned<NullPayload> decode(sks::wire::WireReader&) {
    return sim::make_payload<NullPayload>();
  }
};

class SinkNode : public sim::DispatchingNode {
 public:
  SinkNode() {
    on<NullPayload>([](NodeId, sim::Owned<NullPayload>) {});
  }
  void fire(NodeId to) { send(to, sim::make_payload<NullPayload>()); }
};

void BM_SimulatorRoundTrip(benchmark::State& state) {
  sim::Network net;
  const NodeId a = net.add_node(std::make_unique<SinkNode>());
  const NodeId b = net.add_node(std::make_unique<SinkNode>());
  (void)a;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(0).fire(b);
    net.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorRoundTrip);

// The same round trip with a continuous-telemetry sampler attached at a
// 64-round cadence (~1 sample/epoch for this workload). The delta vs
// BM_SimulatorRoundTrip is the whole cost of live telemetry: one branch
// per round plus a counter read-out at each sample point (the acceptance
// budget is <3% on the round-trip time).
void BM_SimulatorRoundTripTelemetry(benchmark::State& state) {
  sim::Network net;
  const NodeId a = net.add_node(std::make_unique<SinkNode>());
  const NodeId b = net.add_node(std::make_unique<SinkNode>());
  (void)a;
  obs::Sampler::Options opts;
  opts.every_rounds = 64;
  obs::Sampler sampler(net, opts);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(0).fire(b);
    net.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["samples"] =
      static_cast<double>(sampler.cumulative().samples);
}
BENCHMARK(BM_SimulatorRoundTripTelemetry);

// The async pending queue (relative-round ring buffer) under randomized
// delays — the path the churn/semantics experiments exercise.
void BM_SimulatorAsyncRoundTrip(benchmark::State& state) {
  sim::NetworkConfig cfg;
  cfg.mode = sim::DeliveryMode::kAsynchronous;
  cfg.max_delay = 8;
  sim::Network net(cfg);
  const NodeId b = net.add_node(std::make_unique<SinkNode>());
  net.add_node(std::make_unique<SinkNode>());
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.node_as<SinkNode>(1).fire(b);
    net.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorAsyncRoundTrip);

// Typed node access — on the hot path of every harness accessor; served
// from the registration-time pointer cache, no dynamic_cast.
void BM_NodeAsAccess(benchmark::State& state) {
  sim::Network net;
  for (int i = 0; i < 64; ++i) net.add_node(std::make_unique<SinkNode>());
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&net.node_as<SinkNode>(v));
    v = (v + 1) & 63;
  }
}
BENCHMARK(BM_NodeAsAccess);

}  // namespace
}  // namespace sks

// Custom main: translate the repo-wide `--json [path]` flag into
// google-benchmark's --benchmark_out so bench_micro emits the same
// BENCH_<name>.json artifact as the table benches.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--json") == 0) {
      std::string path;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        path = argv[++i];
      }
      args.push_back("--benchmark_out=" +
                     sks::bench::json_output_path("micro", path));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
