#!/usr/bin/env python3
"""Compare a bench --json artifact against a committed baseline.

The table benches emit BENCH_<name>.json (see bench/bench_util.hpp);
committed baselines live in bench/baselines/ and are the same artifact
captured from a known-good run with the exact flags CI uses. Because the
simulator is deterministic, protocol-cost columns (rounds, messages,
bits, overhead ratios) must match the baseline bit-for-bit on any
machine; wall-clock columns are machine noise and are skipped unless a
tolerance is given explicitly.

    tools/bench_compare.py <baseline.json> <current.json>
        [--tol COL=FRAC ...]   per-column relative tolerance (e.g.
                               --tol rounds=0.05 allows +/-5%); FRAC 0
                               means exact. Overrides the default band.
        [--tol-default FRAC]   tolerance for every non-skipped column
                               (default 0 = exact)
        [--skip COL ...]       additionally skip a column by name

A row is matched to the baseline row with the same key (the first
column). Every baseline row and column must be present in the current
artifact — a vanished sweep point is a coverage regression, not a pass.
Exit status: 0 = within tolerance, 1 = regression (with a delta table
on stdout), 2 = usage/format error.
"""

import argparse
import json
import sys

# Wall-clock / rate / utilization columns: nondeterministic, skipped
# unless the caller supplies --tol for them explicitly.
DEFAULT_SKIP_SUBSTRINGS = (
    "wall",
    "ms",
    "sec",
    "/s",
    "speedup",
    "busy",
    "wait",
)


def is_skipped_by_default(col: str) -> bool:
    c = col.lower()
    return any(s in c for s in DEFAULT_SKIP_SUBSTRINGS)


def load(path: str) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt(v: float) -> str:
    return f"{v:g}"


def compare(base: dict, cur: dict, tol: dict, tol_default: float,
            skip: set) -> int:
    name = base.get("bench", "?")
    if cur.get("bench") != base.get("bench"):
        print(f"FAIL  bench name mismatch: baseline '{name}' vs "
              f"current '{cur.get('bench')}'")
        return 1

    failures = 0
    checked = 0
    rows_out = []

    base_tables = base.get("tables", [])
    cur_tables = cur.get("tables", [])
    if len(cur_tables) < len(base_tables):
        print(f"FAIL  {name}: baseline has {len(base_tables)} tables, "
              f"current has {len(cur_tables)}")
        return 1

    for ti, bt in enumerate(base_tables):
        ct = cur_tables[ti]
        bcols, ccols = bt["columns"], ct["columns"]
        missing = [c for c in bcols if c not in ccols]
        if missing:
            print(f"FAIL  {name} table {ti}: columns vanished: {missing}")
            failures += 1
            continue
        # Rows are matched positionally (sweep order is deterministic and
        # baselines are captured with the same flags CI runs); the first
        # column is verified as a key, but it need not be unique — e.g.
        # the recovery tables repeat n across crash counts.
        key_col = bcols[0]
        key_idx = ccols.index(key_col)
        for ri, brow in enumerate(bt["rows"]):
            key = brow[0]
            if ri >= len(ct["rows"]):
                print(f"FAIL  {name} table {ti}: row {ri} "
                      f"({key_col}={fmt(key)}) vanished from the current "
                      f"run")
                failures += 1
                continue
            crow = ct["rows"][ri]
            if crow[key_idx] != key:
                print(f"FAIL  {name} table {ti}: row {ri} key mismatch: "
                      f"{key_col}={fmt(key)} vs {fmt(crow[key_idx])}")
                failures += 1
                continue
            for ci, col in enumerate(bcols):
                if col in skip:
                    continue
                if col not in tol and is_skipped_by_default(col):
                    continue
                bval = brow[ci]
                cval = crow[ccols.index(col)]
                band = tol.get(col, tol_default)
                denom = abs(bval) if bval != 0 else 1.0
                delta = (cval - bval) / denom
                ok = abs(delta) <= band + 1e-12
                checked += 1
                if not ok:
                    failures += 1
                rows_out.append((ok, ti, key, col, bval, cval, delta, band))

    for ok, ti, key, col, bval, cval, delta, band in rows_out:
        if ok:
            continue
        print(f"FAIL  {name} table {ti} [{fmt(key)}] {col}: "
              f"baseline {fmt(bval)} -> current {fmt(cval)} "
              f"({delta:+.1%}, allowed +/-{band:.1%})")

    status = "REGRESSION" if failures else "ok"
    print(f"bench_compare: {name}: {checked} cells checked, "
          f"{failures} regressions -> {status}")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Gate a bench --json artifact against its baseline.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tol", action="append", default=[],
                    metavar="COL=FRAC")
    ap.add_argument("--tol-default", type=float, default=0.0)
    ap.add_argument("--skip", action="append", default=[], metavar="COL")
    args = ap.parse_args()

    tol = {}
    for spec in args.tol:
        if "=" not in spec:
            print(f"bench_compare: bad --tol '{spec}' (want COL=FRAC)",
                  file=sys.stderr)
            return 2
        col, frac = spec.rsplit("=", 1)
        try:
            tol[col] = float(frac)
        except ValueError:
            print(f"bench_compare: bad --tol fraction '{frac}'",
                  file=sys.stderr)
            return 2

    return compare(load(args.baseline), load(args.current), tol,
                   args.tol_default, set(args.skip))


if __name__ == "__main__":
    sys.exit(main())
